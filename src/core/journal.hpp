// Append-only, CRC-framed event journal — the write-ahead log of a
// record session.
//
// PYTHIA's reference execution only persists its grammar at the end of a
// run (paper §II-A); a crash hours into a long record run would lose the
// whole trace. Sequitur-style inference is strictly incremental, so the
// natural durability pair is a periodic grammar checkpoint plus this
// journal: every submitted event (and every registry intern) is framed,
// checksummed and appended here *before* anything else depends on it.
// Recovery replays the journal tail on top of the newest valid
// checkpoint — or reconstructs the entire grammar from the journal alone.
//
// On-disk layout (little-endian; see docs/FORMAT.md for the normative
// description):
//
//   file header   16 bytes   magic "PYJRNL01", u32 segment_bytes, u32 crc
//   segment       segment_bytes each, back to back; the last one may be
//                 partial (the active tail)
//     seg header  24 bytes   u32 magic, u64 first_record_seq,
//                            u64 first_event_count, u32 header crc
//     records     until the segment is full; a record never spans
//                 segments — the writer zero-pads and seals instead
//   record        u32 check, u32 len_type (type << 24 | payload_len),
//                 payload. The check value covers len_type, the payload
//                 AND the record's implied sequence number, so a record
//                 that is byte-identical but replayed at the wrong
//                 position (duplicated segment) fails validation. It is
//                 a position-salted mix64 frame check (record_check()),
//                 not a CRC: records are written once per event, and the
//                 mix avalanches in a few ALU ops where table-driven
//                 CRC32 costs a chain of L1 loads. File and segment
//                 headers, written rarely, keep CRC32.
//
// Torn-tail tolerance: scan_journal() accepts the longest valid prefix —
// segment headers must chain (seq / event-count continuity), records
// must checksum — and reports where validity ends, so a writer resumed
// after a crash truncates the torn bytes and continues in place.
//
// Crash semantics: the destructor does NOT flush buffered records —
// flush()/sync()/close() are the durability API. This is deliberate: it
// lets in-process kill-point tests abandon a writer and observe exactly
// the on-disk state a real crash would leave.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "core/event.hpp"
#include "support/hash.hpp"
#include "support/status.hpp"

namespace pythia {

/// Frame check of one journal record: a 32-bit fold of position-salted
/// mix64 passes over the frame word (len_type), the payload (8-byte
/// little-endian words, zero-padded tail) and the record's implied
/// sequence number. Each word is mixed independently (no serial chain),
/// so the common 12-byte event payload costs three parallel mixes; for
/// the event fast path the compiler constant-folds the len_type term.
inline std::uint32_t record_check(std::uint32_t len_type, const void* payload,
                                  std::size_t size, std::uint64_t seq) {
  std::uint64_t h =
      support::mix64(seq ^ 0x9e3779b97f4a7c15ULL) ^
      support::mix64(std::uint64_t{len_type} ^ 0xbf58476d1ce4e5b9ULL);
  const auto* p = static_cast<const unsigned char*>(payload);
  std::uint64_t salt = 0xff51afd7ed558ccdULL;
  while (size >= 8) {
    std::uint64_t w;
    std::memcpy(&w, p, 8);
    h ^= support::mix64(w ^ salt);
    salt += 0x94d049bb133111ebULL;  // position salt: word swaps change h
    p += 8;
    size -= 8;
  }
  if (size > 0) {
    std::uint64_t w = 0;
    std::memcpy(&w, p, size);
    h ^= support::mix64(w ^ salt);
  }
  return static_cast<std::uint32_t>(h ^ (h >> 32));
}

struct JournalOptions {
  /// Fixed segment size. Small segments bound the blast radius of a torn
  /// tail; large segments amortize the seal fsync. Clamped to >= 256.
  std::size_t segment_bytes = 64 * 1024;

  /// Push buffered records to the OS every N events (write(2), no
  /// fsync). Completed writes survive process death (SIGKILL, OOM kill);
  /// only power loss can take them. 0 = only on segment seal.
  std::uint64_t flush_every_events = 1024;

  /// fsync cadence in events for power-loss durability. 0 = only where
  /// sync_on_seal says so, plus explicit sync() calls.
  std::uint64_t sync_every_events = 0;

  /// fsync whenever a segment fills.
  bool sync_on_seal = true;
};

/// One decoded journal record.
struct JournalRecord {
  enum class Type : std::uint8_t {
    kPad = 0,       ///< never materialized; padding marker on disk only
    kEvent = 1,     ///< payload: u32 terminal id, u64 timestamp ns
    kKind = 2,      ///< payload: kind name bytes (intern order)
    kEventDef = 3,  ///< payload: u32 kind id, i32 aux (intern order)
  };

  Type type = Type::kPad;
  std::uint64_t seq = 0;  ///< position in the journal's record stream

  TerminalId event = 0;        // kEvent
  std::uint64_t time_ns = 0;   // kEvent
  std::string name;            // kKind
  KindId kind = 0;             // kEventDef
  EventAux aux = kNoAux;       // kEventDef
};

/// Result of validating a journal file: the longest valid prefix.
struct JournalScan {
  std::vector<JournalRecord> records;
  std::uint64_t event_records = 0;  ///< kEvent records among `records`
  std::uint64_t segments = 0;       ///< segments with a valid header
  std::size_t segment_bytes = 0;    ///< from the file header

  std::uint64_t valid_bytes = 0;  ///< prefix that validated (incl. headers)
  std::uint64_t file_bytes = 0;
  bool torn = false;              ///< valid_bytes < file_bytes
  std::string torn_note;          ///< what ended the scan, for diagnostics

  std::uint64_t torn_tail_bytes() const { return file_bytes - valid_bytes; }
};

/// Validates `path` and decodes every record of its longest valid
/// prefix. A torn or corrupt tail is not an error — it is reported via
/// `torn`/`torn_note`. Only an unreadable file or an invalid *file
/// header* fails: without the header nothing can be trusted.
Result<JournalScan> scan_journal(const std::string& path);

class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter();  // closes the fd WITHOUT flushing (crash semantics)

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;
  JournalWriter(JournalWriter&& other) noexcept;
  JournalWriter& operator=(JournalWriter&& other) noexcept;

  /// Creates (or truncates) a fresh journal.
  static Result<JournalWriter> create(const std::string& path,
                                      const JournalOptions& options);

  /// Resumes an existing journal after scan_journal(): truncates the
  /// torn tail (if any) and continues appending mid-segment. The
  /// segment size recorded in the file wins over `options.segment_bytes`.
  static Result<JournalWriter> resume(const std::string& path,
                                      const JournalOptions& options,
                                      const JournalScan& scan);

  /// Per-event hot path, inline so a recording loop pays only the CRC
  /// and a buffered memcpy: taken when the record fits in the open
  /// segment and no flush/sync cadence comes due. Sealing, cadence
  /// flushes and error states fall through to the out-of-line slow path.
  Status append_event(TerminalId event, std::uint64_t time_ns) {
    constexpr std::size_t kEventRecordBytes = 8 + 12;  // header + payload
    if (fd_ >= 0 &&
        buffer_used_ + kEventRecordBytes <= options_.segment_bytes &&
        (options_.flush_every_events == 0 ||
         events_since_flush_ + 1 < options_.flush_every_events) &&
        (options_.sync_every_events == 0 ||
         events_since_sync_ + 1 < options_.sync_every_events)) {
      constexpr std::uint32_t kLenType =
          (static_cast<std::uint32_t>(JournalRecord::Type::kEvent) << 24) |
          12u;
      unsigned char payload[12];
      std::memcpy(payload, &event, 4);
      std::memcpy(payload + 4, &time_ns, 8);
      const std::uint32_t check =
          record_check(kLenType, payload, sizeof payload, next_seq_);
      unsigned char* out = buffer_.data() + buffer_used_;
      std::memcpy(out, &check, 4);
      std::memcpy(out + 4, &kLenType, 4);
      std::memcpy(out + 8, payload, sizeof payload);
      buffer_used_ += kEventRecordBytes;
      ++next_seq_;
      ++event_count_;
      ++events_since_flush_;
      ++events_since_sync_;
      return Status();
    }
    return append_event_slow(event, time_ns);
  }

  Status append_kind(std::string_view name);
  Status append_event_def(KindId kind, EventAux aux);

  /// Pushes buffered records to the OS (survives process death).
  Status flush();
  /// flush() + fsync (survives power loss).
  Status sync();
  /// sync() + release the descriptor. The writer is unusable afterwards.
  Status close();

  bool is_open() const { return fd_ >= 0; }
  std::uint64_t record_count() const { return next_seq_; }
  std::uint64_t event_count() const { return event_count_; }
  std::size_t segment_bytes() const { return options_.segment_bytes; }

 private:
  Status append_event_slow(TerminalId event, std::uint64_t time_ns);
  Status append_record(JournalRecord::Type type, const void* payload,
                       std::size_t size);
  Status seal_segment();
  void start_segment();
  void release();

  int fd_ = -1;
  std::string path_;
  JournalOptions options_;
  /// The active segment, pre-sized to segment_bytes and zero-filled on
  /// start; records land by plain stores, so the hot path never touches
  /// vector growth, and the pad region of a sealed segment is already
  /// zero.
  std::vector<unsigned char> buffer_;
  std::size_t buffer_used_ = 0;     ///< bytes of buffer_ holding records
  std::size_t buffer_flushed_ = 0;  ///< buffer_ prefix already write(2)n
  std::uint64_t next_seq_ = 0;
  std::uint64_t event_count_ = 0;
  std::uint64_t events_since_flush_ = 0;
  std::uint64_t events_since_sync_ = 0;
};

}  // namespace pythia
