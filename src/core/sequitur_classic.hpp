// Baseline: classic SEQUITUR (Nevill-Manning & Witten, 1997) — the
// algorithm PYTHIA's grammar derives from, *without* repetition
// exponents.
//
// The paper's §IV notes that plain Sequitur "suffers from drawbacks for
// detecting some control flow from execution traces" and follows
// Cyclitur in adding consecutive-repetition counts. This baseline exists
// to quantify that choice (bench/ablation_exponents): a loop executed
// 2^k times costs classic Sequitur a chain of ~k rules and revisits the
// whole hierarchy on every iteration, whereas the exponent grammar keeps
// one `A^n` occurrence.
//
// Implementation: the textbook algorithm — digram uniqueness and rule
// utility over doubly-linked symbol lists, with the standard guard
// against overlapping digrams (aaa).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/symbol.hpp"

namespace pythia::baseline {

struct SeqNode {
  Symbol sym;
  SeqNode* prev = nullptr;
  SeqNode* next = nullptr;
  struct SeqRule* owner = nullptr;
  bool alive = true;
};

struct SeqRule {
  std::uint32_t id = 0;
  SeqNode* head = nullptr;
  SeqNode* tail = nullptr;
  std::size_t length = 0;
  std::vector<SeqNode*> users;
  bool alive = true;
};

class ClassicSequitur {
 public:
  ClassicSequitur();
  ~ClassicSequitur();
  ClassicSequitur(const ClassicSequitur&) = delete;
  ClassicSequitur& operator=(const ClassicSequitur&) = delete;

  void append(TerminalId event);

  std::size_t rule_count() const { return live_rule_count_; }
  /// Total number of body symbols across all rules (grammar size).
  std::size_t node_count() const;
  std::uint64_t sequence_length() const { return appended_; }

  std::vector<TerminalId> unfold() const;
  void check_invariants() const;
  std::string to_text() const;

 private:
  SeqNode* allocate(Symbol sym);
  void release(SeqNode* node);
  SeqRule* allocate_rule();

  void link_after(SeqRule* rule, SeqNode* position, SeqNode* node);
  void unlink(SeqNode* node);
  void register_user(SeqNode* node);
  void deregister_user(SeqNode* node);

  void index_pair(SeqNode* left);
  void unindex_pair(SeqNode* left);
  SeqNode* find_pair(Symbol a, Symbol b) const;

  /// Checks the digram starting at `left`; resolves duplicates.
  void enforce_digram(SeqNode* left, int depth);
  void substitute(SeqNode* left, SeqRule* rule);
  /// Utility enforcement is deferred to the end of each append (as in
  /// the canonical implementation, which expands under-used rules only
  /// after both digram substitutions) — immediate inlining could splice
  /// into a digram site mid-resolution.
  void process_dirty_rules();
  void inline_rule(SeqRule* rule);

  std::vector<SeqNode*> pool_;
  std::vector<SeqNode*> free_list_;
  std::vector<SeqNode*> pending_free_;
  std::vector<SeqRule*> rules_;
  SeqRule* root_ = nullptr;
  std::size_t live_rule_count_ = 0;
  std::unordered_map<std::uint64_t, SeqNode*> digrams_;
  std::vector<SeqRule*> dirty_rules_;
  std::uint64_t appended_ = 0;
};

}  // namespace pythia::baseline
