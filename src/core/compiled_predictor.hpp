// PYTHIA-PREDICT over a compiled grammar blob (see compile.hpp).
//
// CompiledPredictor is a drop-in stand-in for Predictor that answers the
// same queries from the flat tables of a CompiledView instead of the
// pointer-linked Grammar: anchoring walks prefix-summed occurrence spans,
// predict(k <= kCompiledMaxK) resolves successors from the per-node tail
// and per-rule head-terminal tables without simulating a path copy, and
// predict_n copies pre-flattened rule expansions. Results are *identical*
// to the interpreted predictor over the grammar the blob was compiled
// from (candidate enumeration order, vote accumulation order, breaker
// state machine and jitter RNG are all mirrored exactly — the
// differential tests assert this event by event across the app catalog).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/compile.hpp"
#include "core/predictor.hpp"
#include "support/rng.hpp"
#include "support/small_vec.hpp"

namespace pythia {

/// One level of a compiled progress sequence: a stable node id plus the
/// current repetition index in [0, node.exp). The flat analogue of
/// PathElement (stable ids replace pointers, so paths are position-
/// independent and hash/compare identically across processes).
struct CompiledPathElement {
  std::uint32_t node = 0;
  std::uint64_t rep = 0;

  friend bool operator==(const CompiledPathElement& a,
                         const CompiledPathElement& b) {
    return a.node == b.node && a.rep == b.rep;
  }
};

/// A position in the unfolded reference trace, terminal-first — the
/// compiled analogue of ProgressPath, walking table offsets instead of
/// node pointers.
class CompiledPath {
 public:
  static constexpr std::size_t kInlineDepth = 12;

  bool empty() const { return elements_.empty(); }
  std::size_t depth() const { return elements_.size(); }
  const CompiledPathElement& element(std::size_t level) const {
    return elements_[level];
  }

  TerminalId terminal(const CompiledView& view) const {
    return Symbol::from_raw(view.node(elements_.front().node).sym_raw)
        .terminal_id();
  }

  /// Depth-first successor; false when past the end of the trace.
  bool advance(const CompiledView& view);

  std::uint64_t weight(const CompiledView& view) const {
    const CompiledNode& node = view.node(elements_.front().node);
    return view.rule(node.owner_rule).occurrences * node.exp;
  }

  std::uint64_t hash() const;

  /// Timing context key: identical to ProgressPath::suffix_key (both hash
  /// stable node ids), so compiled timing lookups hit the same entries.
  std::uint64_t suffix_key(std::size_t levels) const;

  /// Mirror of ProgressPath::enumerate_occurrences over the occurrence
  /// spans and canonical user lists (same paths, same order).
  static void enumerate_occurrences(const CompiledView& view,
                                    TerminalId event, std::size_t limit,
                                    std::vector<CompiledPath>& out);

  support::SmallVec<CompiledPathElement, kInlineDepth> elements_;
};

class CompiledPredictor {
 public:
  using Options = Predictor::Options;
  using Stats = Predictor::Stats;

  /// `view` must stay valid (and its underlying bytes mapped) for the
  /// predictor's lifetime; the view itself is copied.
  explicit CompiledPredictor(const CompiledView& view)
      : CompiledPredictor(view, Options{}) {}
  CompiledPredictor(const CompiledView& view, Options options);

  void observe(TerminalId event);
  std::optional<Prediction> predict(std::size_t distance) const;
  std::vector<Prediction> predict_distribution(std::size_t distance) const;
  std::vector<TerminalId> predict_sequence(std::size_t count) const;
  std::size_t predict_sequence_into(TerminalId* out, std::size_t count) const;

  /// O(1): the compiler precomputed the per-terminal totals.
  std::uint64_t reference_occurrences(TerminalId event) const {
    return view_.occ_span(event).total;
  }

  std::optional<double> predict_time_ns(std::size_t distance) const;

  bool synchronized() const { return !candidates_.empty(); }
  std::size_t candidate_count() const { return candidates_.size(); }
  Health health() const { return health_; }
  double confidence() const {
    return window_count_ == 0
               ? 1.0
               : static_cast<double>(window_advanced_) /
                     static_cast<double>(window_count_);
  }
  const Stats& stats() const { return stats_; }
  const CompiledView& view() const { return view_; }
  const Options& options() const { return options_; }

 private:
  void anchor(TerminalId event);
  void dedupe_and_cap(std::vector<CompiledPath>& paths);
  double accumulate_votes(std::size_t distance) const;
  bool predictions_suppressed() const {
    return options_.breaker.enabled && health_ != Health::kHealthy;
  }
  void record_outcome(bool advanced);
  void enter_degraded();
  std::uint32_t jittered_spacing(std::uint32_t spacing);

  /// Terminal `k` steps ahead of `path` (k in [1, kCompiledMaxK]) from
  /// the successor tables alone — no path copy, no simulation.
  bool resolve_terminal(const CompiledPath& path, std::size_t k,
                        TerminalId& out) const;

  /// Compiled TimingModel::expect_ns: deepest recorded suffix, else the
  /// global mean.
  std::optional<double> expect_ns(const CompiledPath& path) const;

  /// Appends the expansion of `sym_raw` to out[filled..count).
  void emit_symbol(std::uint32_t sym_raw, TerminalId* out,
                   std::size_t& filled, std::size_t count) const;

  CompiledView view_;
  Options options_;
  std::vector<CompiledPath> candidates_;
  Stats stats_;
  /// The anchor-prediction fast path is valid while the candidate set is
  /// exactly what anchor() produced (predict-after-anchor is precomputed
  /// per terminal); any advance invalidates it. kCompiledInvalid = stale.
  TerminalId anchored_event_ = kCompiledInvalid;
  /// Table usable only when computed with our caps.
  bool anchor_table_usable_ = false;

  // Hot-path scratch, cycled exactly like Predictor's.
  std::vector<CompiledPath> scratch_paths_;
  std::vector<std::uint64_t> seen_hashes_;
  struct RankEntry {
    std::uint64_t weight;
    std::uint32_t index;
  };
  std::vector<RankEntry> rank_scratch_;
  std::vector<CompiledPath> sorted_scratch_;
  mutable std::vector<Prediction> vote_scratch_;
  mutable CompiledPath future_scratch_;

  // Breaker state (identical machine and RNG stream to Predictor's).
  Health health_ = Health::kHealthy;
  std::vector<std::uint8_t> window_;
  std::size_t window_next_ = 0;
  std::size_t window_count_ = 0;
  std::size_t window_advanced_ = 0;
  std::uint32_t miss_streak_ = 0;
  std::uint32_t advance_streak_ = 0;
  std::uint32_t backoff_ = 0;
  std::uint32_t probe_countdown_ = 0;
  support::Rng jitter_rng_;
};

}  // namespace pythia
