#include "core/sequitur_classic.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace pythia::baseline {

namespace {
constexpr int kMaxDepth = 2000;
}

ClassicSequitur::ClassicSequitur() { root_ = allocate_rule(); }

ClassicSequitur::~ClassicSequitur() {
  for (SeqNode* node : pool_) delete node;
  for (SeqRule* rule : rules_) delete rule;
}

SeqNode* ClassicSequitur::allocate(Symbol sym) {
  SeqNode* node;
  if (!free_list_.empty()) {
    node = free_list_.back();
    free_list_.pop_back();
  } else {
    node = new SeqNode();
    pool_.push_back(node);
  }
  node->sym = sym;
  node->prev = node->next = nullptr;
  node->owner = nullptr;
  node->alive = true;
  return node;
}

void ClassicSequitur::release(SeqNode* node) {
  PYTHIA_ASSERT(node->alive);
  node->alive = false;
  pending_free_.push_back(node);
}

SeqRule* ClassicSequitur::allocate_rule() {
  auto* rule = new SeqRule();
  rule->id = static_cast<std::uint32_t>(rules_.size());
  rules_.push_back(rule);
  ++live_rule_count_;
  return rule;
}

void ClassicSequitur::link_after(SeqRule* rule, SeqNode* position,
                                 SeqNode* node) {
  node->owner = rule;
  if (position == nullptr) {
    node->prev = nullptr;
    node->next = rule->head;
    if (rule->head != nullptr) rule->head->prev = node;
    rule->head = node;
    if (rule->tail == nullptr) rule->tail = node;
  } else {
    node->prev = position;
    node->next = position->next;
    if (position->next != nullptr) position->next->prev = node;
    position->next = node;
    if (rule->tail == position) rule->tail = node;
  }
  ++rule->length;
  register_user(node);
}

void ClassicSequitur::unlink(SeqNode* node) {
  SeqRule* rule = node->owner;
  if (node->prev != nullptr) node->prev->next = node->next;
  if (node->next != nullptr) node->next->prev = node->prev;
  if (rule->head == node) rule->head = node->next;
  if (rule->tail == node) rule->tail = node->prev;
  --rule->length;
  deregister_user(node);
  node->prev = node->next = nullptr;
  node->owner = nullptr;
}

void ClassicSequitur::register_user(SeqNode* node) {
  if (!node->sym.is_rule()) return;
  rules_[node->sym.rule_id()]->users.push_back(node);
}

void ClassicSequitur::deregister_user(SeqNode* node) {
  if (!node->sym.is_rule()) return;
  SeqRule* rule = rules_[node->sym.rule_id()];
  auto it = std::find(rule->users.begin(), rule->users.end(), node);
  PYTHIA_ASSERT(it != rule->users.end());
  rule->users.erase(it);
  if (rule->alive && rule != root_) dirty_rules_.push_back(rule);
}

void ClassicSequitur::index_pair(SeqNode* left) {
  PYTHIA_ASSERT(left->next != nullptr);
  digrams_[digram_key(left->sym, left->next->sym)] = left;
}

void ClassicSequitur::unindex_pair(SeqNode* left) {
  if (left == nullptr || !left->alive || left->next == nullptr) return;
  auto it = digrams_.find(digram_key(left->sym, left->next->sym));
  if (it != digrams_.end() && it->second == left) digrams_.erase(it);
}

SeqNode* ClassicSequitur::find_pair(Symbol a, Symbol b) const {
  auto it = digrams_.find(digram_key(a, b));
  return it != digrams_.end() ? it->second : nullptr;
}

void ClassicSequitur::append(TerminalId event) {
  ++appended_;
  SeqNode* node = allocate(Symbol::terminal(event));
  SeqNode* tail = root_->tail;
  link_after(root_, tail, node);
  if (tail != nullptr) enforce_digram(tail, 0);
  process_dirty_rules();
  free_list_.insert(free_list_.end(), pending_free_.begin(),
                    pending_free_.end());
  pending_free_.clear();
}

void ClassicSequitur::process_dirty_rules() {
  while (!dirty_rules_.empty()) {
    SeqRule* rule = dirty_rules_.back();
    dirty_rules_.pop_back();
    if (!rule->alive || rule == root_) continue;
    if (rule->users.size() == 1) {
      inline_rule(rule);
    } else if (rule->users.empty()) {
      // Transient: both occurrences sat inside dying structure.
      SeqNode* node = rule->head;
      while (node != nullptr) {
        SeqNode* next = node->next;
        unindex_pair(node);
        deregister_user(node);
        node->prev = node->next = nullptr;
        node->owner = nullptr;
        release(node);
        node = next;
      }
      rule->head = rule->tail = nullptr;
      rule->length = 0;
      rule->alive = false;
      --live_rule_count_;
    }
  }
}

void ClassicSequitur::enforce_digram(SeqNode* left, int depth) {
  PYTHIA_ASSERT_MSG(depth < kMaxDepth, "cascade too deep");
  if (left == nullptr || !left->alive || left->next == nullptr) return;
  SeqNode* right = left->next;

  SeqNode* existing = find_pair(left->sym, right->sym);
  if (existing == nullptr) {
    index_pair(left);
    return;
  }
  if (existing == left) return;
  // Overlap guard (the classic "aaa" case): if the indexed occurrence
  // shares a node with this one, leave things alone.
  if (existing->next == left || right->next == existing) return;

  SeqRule* target;
  SeqRule* existing_owner = existing->owner;
  const bool reuse = existing_owner != root_ &&
                     existing_owner->length == 2 &&
                     existing_owner->head == existing;
  if (reuse) {
    target = existing_owner;
    substitute(left, target);
  } else {
    target = allocate_rule();
    SeqNode* a = allocate(existing->sym);
    link_after(target, nullptr, a);
    SeqNode* b = allocate(existing->next->sym);
    link_after(target, a, b);
    digrams_[digram_key(a->sym, b->sym)] = a;
    substitute(existing, target);
    if (left->alive && left->next != nullptr &&
        left->next->sym == target->head->next->sym &&
        left->sym == target->head->sym) {
      substitute(left, target);
    }
  }
}

void ClassicSequitur::substitute(SeqNode* left, SeqRule* rule) {
  PYTHIA_ASSERT(left->alive && left->next != nullptr);
  SeqRule* owner = left->owner;
  SeqNode* right = left->next;
  SeqNode* before = left->prev;

  unindex_pair(before);  // (before, left)
  unindex_pair(left);    // (left, right)
  unindex_pair(right);   // (right, right->next)

  SeqNode* marker = allocate(Symbol::rule(rule->id));
  unlink(left);
  release(left);
  unlink(right);
  release(right);
  link_after(owner, before, marker);

  if (before != nullptr && before->alive) enforce_digram(before, 1);
  if (marker->alive && marker->next != nullptr) enforce_digram(marker, 1);
}

void ClassicSequitur::inline_rule(SeqRule* rule) {
  PYTHIA_ASSERT(rule->users.size() == 1);
  SeqNode* user = rule->users.front();
  SeqRule* owner = user->owner;
  SeqNode* before = user->prev;
  SeqNode* after = user->next;

  unindex_pair(before);
  unindex_pair(user);

  SeqNode* first = rule->head;
  SeqNode* last = rule->tail;
  for (SeqNode* node = first; node != nullptr; node = node->next) {
    node->owner = owner;
  }
  first->prev = before;
  last->next = after;
  if (before != nullptr) {
    before->next = first;
  } else {
    owner->head = first;
  }
  if (after != nullptr) {
    after->prev = last;
  } else {
    owner->tail = last;
  }
  owner->length += rule->length - 1;

  rule->head = rule->tail = nullptr;
  rule->length = 0;
  rule->users.clear();
  rule->alive = false;
  --live_rule_count_;
  user->prev = user->next = nullptr;
  user->owner = nullptr;
  release(user);

  if (before != nullptr && before->alive) enforce_digram(before, 1);
  if (last->alive && last->next != nullptr) enforce_digram(last, 1);
}

std::size_t ClassicSequitur::node_count() const {
  std::size_t total = 0;
  for (const SeqRule* rule : rules_) {
    if (rule->alive) total += rule->length;
  }
  return total;
}

std::vector<TerminalId> ClassicSequitur::unfold() const {
  std::vector<TerminalId> out;
  out.reserve(appended_);
  std::vector<const SeqNode*> stack;
  if (root_->head != nullptr) stack.push_back(root_->head);
  while (!stack.empty()) {
    const SeqNode* node = stack.back();
    stack.pop_back();
    if (node == nullptr) continue;
    if (node->next != nullptr) stack.push_back(node->next);
    if (node->sym.is_terminal()) {
      out.push_back(node->sym.terminal_id());
    } else {
      const SeqRule* rule = rules_[node->sym.rule_id()];
      PYTHIA_ASSERT(rule->alive);
      stack.push_back(rule->head);
    }
  }
  return out;
}

void ClassicSequitur::check_invariants() const {
  std::unordered_map<std::uint64_t, const SeqNode*> seen;
  std::size_t live = 0;
  for (const SeqRule* rule : rules_) {
    if (!rule->alive) continue;
    ++live;
    const SeqNode* prev = nullptr;
    std::size_t length = 0;
    for (const SeqNode* node = rule->head; node != nullptr;
         node = node->next) {
      ++length;
      PYTHIA_ASSERT(node->alive && node->owner == rule);
      PYTHIA_ASSERT(node->prev == prev);
      if (prev != nullptr && prev->sym != node->sym) {
        // Digram uniqueness — for *distinct*-symbol pairs. Same-symbol
        // pairs are exempt: the canonical overlap guard (the "aaa" case)
        // skips them, and when the indexed instance is later consumed by
        // a substitution the survivor is left unindexed, so runs of one
        // symbol can legitimately carry several un-merged (x,x) pairs.
        // This approximation on runs is precisely the weakness the
        // paper's repetition exponents remove (§IV, Cyclitur).
        const std::uint64_t key = digram_key(prev->sym, node->sym);
        PYTHIA_ASSERT_MSG(seen.emplace(key, prev).second,
                          "duplicate digram");
      }
      prev = node;
    }
    PYTHIA_ASSERT(rule->length == length);
    if (rule != root_) {
      PYTHIA_ASSERT_MSG(rule->users.size() >= 2, "under-used rule");
      PYTHIA_ASSERT_MSG(rule->length >= 2, "short rule");
    }
  }
  PYTHIA_ASSERT(live == live_rule_count_);
}

std::string ClassicSequitur::to_text() const {
  std::string out;
  for (const SeqRule* rule : rules_) {
    if (!rule->alive) continue;
    out += rule->id == 0 ? "R" : "Rule" + std::to_string(rule->id);
    out += " ->";
    for (const SeqNode* node = rule->head; node != nullptr;
         node = node->next) {
      out += " ";
      if (node->sym.is_terminal()) {
        const TerminalId id = node->sym.terminal_id();
        out += id < 26 ? std::string(1, static_cast<char>('a' + id))
                       : "t" + std::to_string(id);
      } else {
        out += "Rule" + std::to_string(node->sym.rule_id());
      }
    }
    out += "\n";
  }
  return out;
}

}  // namespace pythia::baseline
