// Grammar compiler: lowers a finalized grammar (+ timing model) into a
// pointer-free, offset-based, relocatable binary blob — the "compiled"
// section of a PYTHIA02 trace file (ROADMAP item 1, following the
// reachability-table construction of *Attention Meets Reachability*).
//
// The blob is proportional to the *grammar*, not the trace, and contains
// everything CompiledPredictor needs to answer queries from flat array
// lookups, with no pointer chasing and no deserialization:
//
//   * a node table indexed by stable node id (symbol, exponent, next
//     sibling, owning rule) — the whole rule graph as offsets;
//   * per-node k-step successor tables (`tails`): the first k_max
//     terminals that follow the node inside its owner's body;
//   * per-rule expansion metadata: one-unfold length, the first k_max
//     terminals of the unfolding, canonical user lists, and (for small
//     rules) the fully flattened terminal expansion for predict_n;
//   * per-terminal anchor lists as prefix-summed occurrence spans plus
//     the precomputed reference-occurrence totals;
//   * an anchor-prediction table: for every terminal t and every
//     k in 1..k_max, the prediction the interpreted Predictor returns
//     right after anchoring on t (computed at compile time by running
//     the interpreted predictor — predict-after-anchor is a pure
//     function of the grammar);
//   * the timing model as a sorted flat (suffix key, sum, count) array.
//
// Every table carries its own CRC32 (consistent with the per-section
// salvage semantics of the PYTHIA02 format) and all offsets are relative
// to the blob start, so the blob can be memory-mapped read-only straight
// from the file and shared between processes. All multi-byte fields are
// little-endian host layout with natural alignment; table offsets are
// 64-byte aligned relative to the blob start, and the file writer pads
// the blob start to a 64-byte file offset, so a page-aligned mmap yields
// correctly aligned tables.
//
// CompiledView::parse validates structure exhaustively (bounds, body
// chain consistency, rule-reference acyclicity) before any table is
// trusted, so a corrupt or malicious blob degrades to "no compiled
// section" — never to undefined behaviour. The loaders treat a failed
// parse exactly like a missing section and fall back to the interpreted
// predictor.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/grammar.hpp"
#include "core/timing.hpp"
#include "support/status.hpp"

namespace pythia {

/// Successor-table depth: predict(k) for k <= kCompiledMaxK resolves from
/// the tables; larger distances fall back to the path-walk (still flat).
inline constexpr std::uint32_t kCompiledMaxK = 8;

/// Sentinel for "no node / no terminal / no entry" in u32 index fields.
inline constexpr std::uint32_t kCompiledInvalid = 0xffffffffu;

/// Table 0 entry, indexed by stable node id. 24 bytes.
struct CompiledNode {
  std::uint32_t sym_raw;     ///< Symbol::raw()
  std::uint32_t next;        ///< stable id of the next sibling or invalid
  std::uint32_t owner_rule;  ///< dense rule index (root == 0)
  std::uint32_t pad;
  std::uint64_t exp;         ///< repetition exponent, >= 1
};
static_assert(sizeof(CompiledNode) == 24);

/// Table 1 entry, indexed by stable node id: the first kCompiledMaxK
/// terminals that follow this node inside its owner's body (one unfold
/// of the following siblings). len < kCompiledMaxK means the body truly
/// ends within the table. 40 bytes.
struct CompiledNodeTail {
  std::uint32_t terms[kCompiledMaxK];
  std::uint32_t len;
  std::uint32_t pad;
};
static_assert(sizeof(CompiledNodeTail) == 40);

/// Table 2 entry, indexed by dense rule index. 72 bytes.
struct CompiledRule {
  std::uint32_t head;         ///< stable id of the first body node
  std::uint32_t users_start;  ///< span into the users table (canonical order)
  std::uint32_t users_count;
  std::uint32_t flat_index;   ///< span start into expansions, or invalid
  std::uint64_t occurrences;  ///< times the body unfolds in the trace
  std::uint64_t exp_len;      ///< terminals in one unfolding (saturating)
  std::uint32_t head_terms[kCompiledMaxK];  ///< first terminals of one unfold
  std::uint32_t head_len;     ///< min(exp_len, kCompiledMaxK)
  std::uint32_t pad;
};
static_assert(sizeof(CompiledRule) == 72);

/// Table 3 entry, indexed by terminal id: the terminal's occurrence nodes
/// as a prefix-summed span into the occ-node table, plus the precomputed
/// reference-occurrence total (sum of exp * owner occurrences). 16 bytes.
struct CompiledOccSpan {
  std::uint32_t start;
  std::uint32_t count;
  std::uint64_t total;
};
static_assert(sizeof(CompiledOccSpan) == 16);

/// Table 7: sorted-by-key timing contexts; preceded by a 24-byte header
/// (entry count, global sum, global count). The global stat follows
/// *load* semantics (sum over all contexts), matching what a predictor
/// over a deserialized TimingModel computes.
struct CompiledTimingEntry {
  std::uint64_t key;
  double sum_ns;
  std::uint64_t count;
};
static_assert(sizeof(CompiledTimingEntry) == 24);

/// Table 8 entry: prediction after a fresh anchor on terminal t at
/// distance k (row-major [terminal][k-1]). event == kCompiledInvalid
/// encodes "interpreted predict returns nullopt". 16 bytes.
struct CompiledAnchorPred {
  std::uint32_t event;
  std::uint32_t pad;
  double probability;
};
static_assert(sizeof(CompiledAnchorPred) == 16);

struct CompiledTableDesc {
  std::uint64_t offset;    ///< from blob start; 64-byte aligned
  std::uint64_t bytes;
  std::uint32_t crc;       ///< CRC32 of the table bytes
  std::uint32_t entry_size;
};
static_assert(sizeof(CompiledTableDesc) == 24);

inline constexpr std::uint32_t kCompiledTableCount = 9;
enum CompiledTable : std::uint32_t {
  kTableNodes = 0,
  kTableTails = 1,
  kTableRules = 2,
  kTableOccSpans = 3,
  kTableOccNodes = 4,
  kTableUsers = 5,
  kTableExpansions = 6,
  kTableTiming = 7,
  kTableAnchorPred = 8,
};

inline constexpr char kCompiledMagic[8] = {'P', 'Y', 'C', 'G',
                                           'R', 'M', '0', '1'};
inline constexpr std::uint32_t kCompiledFlagTiming = 1u << 0;

struct CompiledHeader {
  char magic[8];
  std::uint32_t header_bytes;     ///< sizeof(CompiledHeader)
  std::uint32_t k_max;            ///< kCompiledMaxK
  std::uint32_t node_count;
  std::uint32_t rule_count;
  std::uint32_t terminal_count;   ///< occ-span entries (max terminal + 1)
  std::uint32_t max_candidates;   ///< predictor caps the anchor-prediction
  std::uint32_t max_anchor_paths; ///< table was computed with
  std::uint32_t flags;
  std::uint64_t sequence_length;
  std::uint64_t grammar_digest;   ///< thread_section_digest of the source
  std::uint64_t blob_bytes;
  CompiledTableDesc tables[kCompiledTableCount];
};
static_assert(sizeof(CompiledHeader) == 64 + 24 * kCompiledTableCount);

struct CompileOptions {
  /// Rules with a one-unfold expansion up to this long get their terminal
  /// sequence stored flat (predict_n becomes memcpy for them).
  std::uint64_t max_flat_expansion = 4096;
  /// Total cap on the flat-expansion pool (keeps the artifact proportional
  /// to the grammar even when many rules qualify).
  std::uint64_t max_flat_pool = 1u << 20;
  /// Predictor caps the anchor-prediction table is computed with; the
  /// compiled predictor only uses the table when its own options match.
  std::size_t max_candidates = 32;
  std::size_t max_anchor_paths = 256;
};

/// Compiles a finalized grammar (+ optional timing model) into a blob.
/// `grammar_digest` is the thread_section_digest of the source thread,
/// stored for cross-checking at load. Returns an empty vector when the
/// grammar is not compilable (unfinalized, empty, or over table limits) —
/// callers then simply omit the compiled section.
std::vector<unsigned char> compile_thread(const Grammar& grammar,
                                          const TimingModel* timing,
                                          std::uint64_t grammar_digest,
                                          const CompileOptions& options = {});

/// Stateful repeat compiler for online snapshot publishing: produces blobs
/// byte-identical to compile_thread() (same options), but reuses work from
/// the previous call.
///
///   * Identical grammar digest — the cached blob is returned outright
///     (nothing changed since the last publish).
///   * Identical grammar *structure* with changed timing — the common
///     timestamped steady-state, where every publish adds samples but the
///     grammar settles. The grammar tables are byte-compared against the
///     previous compile's and, when equal, the anchor-prediction table
///     (the dominant compile cost: one interpreted-predictor run per
///     occurring terminal) is reused instead of recomputed. Exact by
///     construction: the anchor table is a pure function of the grammar
///     tables and the fixed predictor caps, and equality is established by
///     memcmp, not by hash.
///   * Always: table scratch buffers persist across calls, so steady-state
///     recompiles allocate nothing beyond the output blob itself.
///
/// Per-rule row reuse deliberately does NOT exist: stable node ids and
/// dense rule indices shift on any rule birth/death (they are assigned
/// root-first in slot order), so a "row for row" delta would need a full
/// remap pass — the same cost as relowering, without the simplicity.
class DeltaCompiler {
 public:
  DeltaCompiler();
  explicit DeltaCompiler(const CompileOptions& options);
  ~DeltaCompiler();
  DeltaCompiler(DeltaCompiler&&) noexcept;
  DeltaCompiler& operator=(DeltaCompiler&&) noexcept;
  DeltaCompiler(const DeltaCompiler&) = delete;
  DeltaCompiler& operator=(const DeltaCompiler&) = delete;

  /// Same contract as compile_thread(): empty vector when the grammar is
  /// not compilable (which also drops the internal caches).
  std::vector<unsigned char> compile(const Grammar& grammar,
                                     const TimingModel* timing,
                                     std::uint64_t grammar_digest);

  struct Stats {
    std::uint64_t compiles = 0;
    std::uint64_t blob_reused = 0;    ///< identical digest: cached blob
    std::uint64_t anchor_reused = 0;  ///< timing-only change: tables reused
    std::uint64_t full = 0;           ///< grammar changed: full relower
  };
  const Stats& stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Non-owning, validated view over a compiled blob. Parse once, then all
/// accessors are bounds-safe by construction (parse rejects any blob
/// whose indices could escape their tables or whose rule graph cycles).
class CompiledView {
 public:
  struct ParseOptions {
    /// Verify the per-table CRC32s (linear in blob size). Off, only the
    /// header and structural invariants are checked — the mmap "touch
    /// only what you use" mode; on (default) is the safe loader mode.
    bool verify_checksums = true;
  };

  CompiledView() = default;

  /// `data` must be 8-byte aligned and hold exactly the blob.
  static Result<CompiledView> parse(const unsigned char* data,
                                    std::size_t size,
                                    const ParseOptions& options);
  static Result<CompiledView> parse(const unsigned char* data,
                                    std::size_t size) {
    return parse(data, size, ParseOptions{});
  }

  bool valid() const { return data_ != nullptr; }
  const unsigned char* data() const { return data_; }
  std::size_t size() const { return size_; }

  const CompiledHeader& header() const {
    return *reinterpret_cast<const CompiledHeader*>(data_);
  }
  std::uint32_t node_count() const { return header().node_count; }
  std::uint32_t rule_count() const { return header().rule_count; }
  std::uint32_t terminal_count() const { return header().terminal_count; }
  std::uint64_t sequence_length() const { return header().sequence_length; }
  std::uint64_t grammar_digest() const { return header().grammar_digest; }
  bool has_timing() const {
    return (header().flags & kCompiledFlagTiming) != 0;
  }

  const CompiledNode& node(std::uint32_t id) const { return nodes_[id]; }
  const CompiledNodeTail& tail(std::uint32_t id) const { return tails_[id]; }
  const CompiledRule& rule(std::uint32_t index) const {
    return rules_[index];
  }

  /// Occurrence span of a terminal; terminals past the table are absent
  /// from the reference trace (empty span, total 0).
  const CompiledOccSpan& occ_span(TerminalId event) const {
    static constexpr CompiledOccSpan kEmpty{0, 0, 0};
    return event < terminal_count() ? occ_spans_[event] : kEmpty;
  }
  const std::uint32_t* occ_nodes() const { return occ_nodes_; }
  const std::uint32_t* users() const { return users_; }
  const std::uint32_t* expansions() const { return expansions_; }

  const CompiledTimingEntry* timing_begin() const { return timing_; }
  std::uint64_t timing_count() const { return timing_count_; }
  double timing_global_sum() const { return timing_global_sum_; }
  std::uint64_t timing_global_count() const { return timing_global_count_; }
  /// Mean of the timing context `key`, or false when absent (binary
  /// search over the sorted table — the compiled TimingModel::expect_ns).
  bool timing_lookup(std::uint64_t key, double& mean_ns) const;

  const CompiledAnchorPred& anchor_pred(TerminalId event,
                                        std::size_t distance) const {
    return anchor_pred_[static_cast<std::size_t>(event) * kCompiledMaxK +
                        (distance - 1)];
  }

 private:
  const unsigned char* data_ = nullptr;
  std::size_t size_ = 0;
  const CompiledNode* nodes_ = nullptr;
  const CompiledNodeTail* tails_ = nullptr;
  const CompiledRule* rules_ = nullptr;
  const CompiledOccSpan* occ_spans_ = nullptr;
  const std::uint32_t* occ_nodes_ = nullptr;
  const std::uint32_t* users_ = nullptr;
  const std::uint32_t* expansions_ = nullptr;
  const CompiledTimingEntry* timing_ = nullptr;
  std::uint64_t timing_count_ = 0;
  double timing_global_sum_ = 0.0;
  std::uint64_t timing_global_count_ = 0;
  const CompiledAnchorPred* anchor_pred_ = nullptr;
};

}  // namespace pythia
