// Lazy partial progress sequences — the literal §II-B2 mechanism.
//
// The paper: "PYTHIA-PREDICT stores the progress sequences containing
// only the terminal corresponding to the last event. From then on, at
// each new event, PYTHIA-PREDICT tries to extend the progress sequence
// by adding a non-terminal whenever it recognizes the associated
// sequence."
//
// Where the main Predictor eagerly materializes every root-anchored path
// of an event when (re-)anchoring, this tracker keeps *suffixes*: a
// chain from the terminal up to some node whose enclosing context is
// still unknown. Walking past the top of the chain branches over the
// rule's usage sites — the lazy extension. The two trackers answer the
// same queries; bench/ablation_tracking compares them on real streams.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/grammar.hpp"
#include "core/predictor.hpp"  // Prediction

namespace pythia {

/// A suffix of a progress sequence: elements terminal-first; the last
/// element's enclosing rule is where knowledge ends.
class PartialPath {
 public:
  PartialPath() = default;
  explicit PartialPath(std::vector<PathElement> chain)
      : chain_(std::move(chain)) {}

  bool empty() const { return chain_.empty(); }
  std::size_t depth() const { return chain_.size(); }
  TerminalId terminal() const {
    return chain_.front().node->sym.terminal_id();
  }
  const PathElement& top() const { return chain_.back(); }

  /// How many positions of the reference trace this suffix stands for:
  /// one per unfolding of the rule that owns the top element.
  std::uint64_t weight() const {
    return chain_.back().node->owner->occurrences;
  }

  /// Appends every possible next position to `out`. Deterministic while
  /// a successor exists inside the known chain; branches over the top
  /// rule's usage sites once the chain is exhausted (the lazy
  /// extension). Produces nothing at the end of the trace.
  void successors(const Grammar& grammar, std::vector<PartialPath>& out,
                  std::size_t limit) const;

  /// Starting partials for an occurrence node of an observed event: the
  /// chain holds only the terminal (both repetition phases when the
  /// occurrence has an exponent).
  static void anchors(const Grammar& grammar, TerminalId event,
                      std::size_t limit, std::vector<PartialPath>& out);

  std::uint64_t hash() const;
  friend bool operator==(const PartialPath& a, const PartialPath& b) {
    return a.chain_ == b.chain_;
  }

 private:
  static void extend_past(const Grammar& grammar, const Node* completed,
                          std::vector<PartialPath>& out, std::size_t limit);
  static std::vector<PathElement> descend(const Grammar& grammar,
                                          const Node* node,
                                          std::uint64_t rep);

  std::vector<PathElement> chain_;
};

/// Drop-in alternative to Predictor using lazy partial tracking.
class LazyPredictor {
 public:
  struct Options {
    std::size_t max_candidates = 32;
    std::size_t max_anchor_paths = 256;
  };

  explicit LazyPredictor(const Grammar& grammar);
  LazyPredictor(const Grammar& grammar, Options options);

  void observe(TerminalId event);
  std::optional<Prediction> predict(std::size_t distance) const;
  std::vector<Prediction> predict_distribution(std::size_t distance) const;

  bool synchronized() const { return !candidates_.empty(); }
  std::size_t candidate_count() const { return candidates_.size(); }

  struct Stats {
    std::uint64_t observed = 0;
    std::uint64_t advanced = 0;
    std::uint64_t reanchored = 0;
    std::uint64_t unknown = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  void anchor(TerminalId event);
  void dedupe_and_cap(std::vector<PartialPath>& paths) const;

  const Grammar& grammar_;
  Options options_;
  std::vector<PartialPath> candidates_;
  Stats stats_;
};

}  // namespace pythia
