// Crash-safe record sessions: journal + grammar checkpoints + recovery.
//
// A RecordSession wraps the single-thread Recorder with a durability
// layer so that a reference execution killed hours in (paper §II-A runs
// the *whole* application once to record it) loses at most the configured
// flush window instead of the entire trace:
//
//   <dir>/journal.pyj       append-only CRC-framed event journal (WAL);
//                           every intern and every event lands here first
//   <dir>/ckpt-<seq>.pythia periodic grammar checkpoints in the normal
//                           PYTHIA02 format, written temp -> fsync ->
//                           atomic rename
//   <dir>/MANIFEST          append-only checkpoint index (one checksummed
//                           line per checkpoint, monotonic event seq)
//   <dir>/trace.pythia      the final trace, written by finish()
//
// Recovery (automatic in open(), or offline via recover_session / the
// trace_recover tool) loads the newest checkpoint that validates AND is
// covered by the journal, replays the journal tail through the normal
// Grammar::append path, truncates any torn journal bytes, and resumes —
// or rebuilds everything from the journal alone when no checkpoint
// survives. The journal is the source of truth; a checkpoint claiming
// more events than the journal holds is stale and ignored.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/journal.hpp"
#include "core/recorder.hpp"
#include "core/trace_io.hpp"
#include "support/status.hpp"

namespace pythia {

struct SessionOptions {
  JournalOptions journal;

  /// Write a grammar checkpoint every N recorded events (0 = never;
  /// recovery then replays the whole journal, which is correct but
  /// linear in the run length).
  std::uint64_t checkpoint_every_events = 0;

  /// Checkpoints kept on disk; older ones are pruned after each new one
  /// lands. At least 1 is kept once any checkpoint exists.
  std::size_t keep_checkpoints = 2;

  /// Forwarded to Recorder::Options (12 bytes/event of memory, enables
  /// the timing model).
  bool record_timestamps = true;
};

/// What open() found on disk and how it resumed.
struct RecoveryInfo {
  bool recovered = false;        ///< an existing journal was resumed
  bool used_checkpoint = false;  ///< a checkpoint seeded the grammar
  std::string checkpoint_file;   ///< file name of that checkpoint ("" if none)
  std::uint64_t checkpoint_events = 0;  ///< events covered by that checkpoint
  std::uint64_t journaled_events = 0;   ///< events in the valid journal prefix
  std::uint64_t replayed_events = 0;    ///< journal tail re-appended on top
  std::uint64_t torn_bytes = 0;         ///< journal bytes truncated as torn
  std::vector<std::string> notes;       ///< human-readable decisions taken
};

class RecordSession {
 public:
  RecordSession(RecordSession&&) = default;
  RecordSession& operator=(RecordSession&&) = default;

  /// Opens (creating the directory if needed) or recovers a session in
  /// `dir`. With an existing journal present, recovery runs first and the
  /// session resumes exactly after the last durable event.
  static Result<RecordSession> open(const std::string& dir,
                                    const SessionOptions& options = {});

  // Registry interning. New kinds/events are journaled (in intern order)
  // before the id is returned, so a replayed journal reproduces the same
  // dense ids.
  KindId intern_kind(std::string_view name);
  TerminalId intern_event(KindId kind, EventAux aux = kNoAux);
  TerminalId intern(std::string_view name, EventAux aux = kNoAux);

  /// Records one event: journal append first, then the grammar. A journal
  /// write failure degrades durability (latched, returned here and from
  /// every later event()) but recording continues — an oracle recording
  /// session must not take the application down with a full disk.
  /// Returns a reference to the latched durability status (not a copy:
  /// Status carries a string, and this is the per-event hot path).
  const Status& event(TerminalId event, std::uint64_t now_ns = 0);

  /// Forces a grammar checkpoint now (also runs on the
  /// checkpoint_every_events cadence). Syncs the journal first so the
  /// checkpoint never claims events the journal could lose.
  Status checkpoint();

  /// journal flush + fsync (power-loss durability for everything so far).
  Status sync();

  /// Ends the session: finalizes the grammar, builds the timing model,
  /// closes the journal and atomically writes <dir>/trace.pythia. On save
  /// failure the error is returned and the journal remains on disk — the
  /// events are not lost, trace_recover can rebuild the trace.
  Result<Trace> finish() &&;

  /// Interns, in dense order, every kind and event `src` holds that this
  /// session's registry does not yet (all journaled via the normal intern
  /// path). Both registries must agree on their common prefix — the ids
  /// handed out here match `src`'s, which is what lets a session journal
  /// events interned in a process-wide SharedRegistry.
  Status import_registry(const EventRegistry& src);

  const EventRegistry& registry() const { return registry_; }
  const RecoveryInfo& recovery() const { return recovery_; }
  std::uint64_t event_count() const { return recorder_.event_count(); }
  const Grammar& grammar() const { return recorder_.grammar(); }
  /// Mutable access for the incremental finalizer (dirty-epoch drains).
  Grammar& mutable_grammar() { return recorder_.mutable_grammar(); }
  /// The timestamped event log (the session forces record_timestamps for
  /// the online oracle's snapshot source; empty if it was disabled).
  const std::vector<TimedEvent>& event_log() const { return recorder_.log(); }
  const std::string& dir() const { return dir_; }

  /// First latched journal/checkpoint failure, if any (kOk otherwise).
  const Status& durability_status() const { return durability_; }

 private:
  RecordSession() = default;

  Status journal_new_interns();
  std::string checkpoint_path(std::uint64_t events) const;

  std::string dir_;
  SessionOptions options_;
  EventRegistry registry_;
  Recorder recorder_;
  JournalWriter journal_;
  RecoveryInfo recovery_;
  Status durability_;
  Status event_error_;  ///< last per-call rejection (not a session fault)
  std::uint64_t events_since_checkpoint_ = 0;
  std::size_t journaled_kinds_ = 0;   ///< registry kinds already journaled
  std::size_t journaled_events_ = 0;  ///< registry event defs already journaled

  /// Checkpoints on disk, oldest first: (event seq, file name). Seeded
  /// from the manifest on recovery, used for pruning.
  std::vector<std::pair<std::uint64_t, std::string>> checkpoints_;
};

/// Offline recovery: rebuilds a finalized Trace from a session directory
/// (checkpoint + journal tail, or journal alone) without resuming it.
/// Powers the trace_recover tool and journal-aware trace_inspect/diff.
Result<Trace> recover_session(const std::string& dir,
                              RecoveryInfo* info = nullptr);

}  // namespace pythia
