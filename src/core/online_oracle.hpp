// Online learn-while-running oracle (ROADMAP item 3): no reference trace.
//
// Every deployment mode before this one assumed a prior reference
// execution. The hardest case for a real runtime system is the *first*
// run: the oracle must learn the application's structure while the
// application executes and earn the right to answer predict queries
// mid-flight. Sequitur is inherently online, so the live grammar is
// always current; what is missing is a *finalized* view (occurrence
// index, timing model) to predict from, and a reason to trust it.
//
//   observe(e) ──► score e against the snapshot predictor (self-accuracy)
//              ──► track e on the snapshot predictor (advance/re-anchor)
//              ──► learn e into the live grammar (Recorder or, crash-safe,
//                  a journaled RecordSession)
//              ──► on a geometric cadence, rebuild the snapshot: replay
//                  the event log into a fresh grammar, finalize it (the
//                  occurrence index build), replay the timing model, and
//                  warm the new predictor up on the log tail so it is
//                  synchronized at the handoff point
//
// The confidence ramp decides when predictions are *served*. Predictions
// are withheld (consumers fall back to their vanilla policy) until the
// rolling self-accuracy over a validation window clears `serve_above`;
// if, while serving, accuracy collapses below `drop_below`, the ramp
// trips: serving stops, the window resets, and the number of clean
// samples required to re-serve doubles (exponential backoff, the
// circuit breaker's discipline applied at the ramp level). Below the
// ramp, the snapshot predictor runs with its own divergence breaker
// armed, so tracking loss inside a snapshot re-anchors with the
// breaker's capped, exponentially backed-off probing.
//
// Crash safety: with the session-backed variant every event is journaled
// (PYJRNL01 WAL + checkpoint manifest) before it is learned. The whole
// oracle state — grammar, snapshot cadence, ramp state, validation
// window — is a pure deterministic function of (event log, options), so
// recovery replays the journaled log through the same pipeline and
// resumes the ramp exactly where the kill left it (asserted event-for-
// event by the SIGKILL matrix via ramp_digest()).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/incremental_finalize.hpp"
#include "core/predictor.hpp"
#include "core/recorder.hpp"
#include "core/session.hpp"
#include "support/status.hpp"

namespace pythia {

class OnlineOracle {
 public:
  struct Options {
    /// First snapshot after this many events; each later snapshot waits
    /// until the log has grown by `snapshot_growth`. Geometric cadence
    /// keeps total rebuild work linear in the run length.
    std::uint64_t min_snapshot_events = 256;
    double snapshot_growth = 1.5;

    /// Log-tail events replayed into each fresh snapshot predictor
    /// (without scoring) so it is synchronized the moment it takes over.
    std::size_t warmup_replay = 64;

    /// Confidence ramp: rolling self-accuracy window and thresholds.
    /// Serving starts when `ramp_min_samples` outcomes exist and the
    /// accuracy is at least `serve_above`; it stops (ramp trip) when the
    /// accuracy falls below `drop_below`. The gap is hysteresis.
    std::size_t ramp_window = 128;
    std::size_t ramp_min_samples = 48;
    double serve_above = 0.55;
    double drop_below = 0.35;

    /// Options for each snapshot predictor. The runtime defaults arm the
    /// divergence circuit breaker — its exponential-backoff probing is
    /// what rations re-anchoring when a snapshot stops matching.
    Predictor::Options predictor = Predictor::Options::runtime_defaults();

    /// Sample the ramp every N events into history() (0 = off). Powers
    /// bench/online's mid-run accuracy-ramp curves.
    std::uint64_t history_every = 0;

    /// Rebuild every snapshot by full log replay instead of the
    /// incremental finalizer. The differential baseline: both paths are
    /// bit-identical by contract (grammar digest, predictions, compiled
    /// blob bytes, ramp_digest()), the incremental one is just
    /// O(rules changed) per publish instead of O(log).
    bool full_rebuild = false;
  };

  /// Ramp state. kLearning before the oracle ever served; kWithheld
  /// after a trip (re-serving needs a doubled streak of clean samples).
  enum class Ramp { kLearning, kServing, kWithheld };

  struct Stats {
    std::uint64_t events = 0;      ///< events observed (== log length)
    std::uint64_t snapshots = 0;   ///< finalized views built
    std::uint64_t scored = 0;      ///< events self-scored against a snapshot
    std::uint64_t hits = 0;        ///< ...that matched the 1-ahead prediction
    std::uint64_t served_events = 0;    ///< events observed while serving
    std::uint64_t withheld_events = 0;  ///< events observed while withheld
    std::uint64_t ramp_trips = 0;       ///< serving -> withheld transitions
    std::uint64_t first_served_event = 0;  ///< event index when serving began
  };

  /// Per-publish build telemetry (observability only — deliberately NOT
  /// part of ramp_digest(): wall-clock latency is nondeterministic).
  struct PublishTelemetry {
    std::uint64_t publishes = 0;    ///< snapshot rebuilds, any path
    std::uint64_t incremental = 0;  ///< ...through the incremental finalizer
    std::uint64_t full = 0;         ///< ...through full log replay
    std::uint64_t last_publish_ns = 0;  ///< wall-clock cost of the last one
    std::uint64_t last_dirty_rules = 0;    ///< drained ids (incremental)
    std::uint64_t last_closure_rules = 0;  ///< unclean closure (incremental)
    bool last_incremental = false;
  };

  /// One history() sample (Options::history_every).
  struct RampSample {
    std::uint64_t events = 0;
    double accuracy = 0.0;  ///< rolling self-accuracy at the sample point
    bool serving = false;
    std::size_t snapshot_rules = 0;  ///< grammar size of the live snapshot
  };

  /// Imports registry entries interned elsewhere (the harness's shared
  /// registry) into the session before an event referencing them is
  /// journaled. Only consulted by the session-backed variant.
  using RegistrySync = std::function<Status(RecordSession&)>;

  /// In-memory variant: learning state dies with the process. Timestamps
  /// are always recorded — the event log is the snapshot source.
  /// (Overloads, not `= {}` defaults: Options is a nested class and its
  /// member initializers are late-parsed.)
  static OnlineOracle in_memory(const Options& options);
  static OnlineOracle in_memory() { return in_memory(Options()); }

  /// Crash-safe variant: events journal into `dir` (PYJRNL01 WAL +
  /// checkpoint manifest). Reopening a killed session recovers the log
  /// and replays it through the same pipeline, resuming the ramp.
  static Result<OnlineOracle> open(const std::string& dir,
                                   const Options& options,
                                   SessionOptions session);
  static Result<OnlineOracle> open(const std::string& dir,
                                   const Options& options) {
    return open(dir, options, SessionOptions());
  }
  static Result<OnlineOracle> open(const std::string& dir) {
    return open(dir, Options(), SessionOptions());
  }

  OnlineOracle(OnlineOracle&&) = default;
  OnlineOracle& operator=(OnlineOracle&&) = default;

  /// Submits the event that just happened: score, track, learn, maybe
  /// refresh the snapshot, advance the ramp.
  void observe(TerminalId event, std::uint64_t now_ns = 0);

  /// Predictions; nullopt while the ramp withholds (or no snapshot yet).
  std::optional<Prediction> predict(std::size_t distance) const;
  std::optional<double> predict_time_ns(std::size_t distance) const;
  std::uint64_t reference_occurrences(TerminalId event) const;

  /// True when the ramp currently serves predictions.
  bool serving() const { return ramp_ == Ramp::kServing; }
  Ramp ramp() const { return ramp_; }

  /// Health for consumers: the snapshot predictor's breaker state while
  /// serving, kDegraded while withheld/learning — so `degraded()` checks
  /// keep every consumer on its vanilla policy until the ramp opens.
  Health health() const;
  /// Rolling self-accuracy (1.0 before any sample, like a fresh breaker).
  double confidence() const {
    return window_count_ == 0 ? 1.0
                              : static_cast<double>(window_hits_) /
                                    static_cast<double>(window_count_);
  }

  const Stats& stats() const { return stats_; }
  const Predictor::Stats& predictor_stats() const;
  const std::vector<RampSample>& history() const { return history_; }

  /// The live (still-appending) grammar and the event log behind it.
  const Grammar& live_grammar() const;
  const std::vector<TimedEvent>& event_log() const;
  std::uint64_t event_count() const { return stats_.events; }

  /// Rules in the current snapshot (0 before the first one).
  std::size_t snapshot_rules() const {
    return snapshot_ ? snapshot_->grammar->rule_count() : 0;
  }
  std::uint64_t snapshot_events() const {
    return snapshot_ ? snapshot_->events : 0;
  }

  const PublishTelemetry& publish_telemetry() const { return telemetry_; }

  /// The current snapshot's finalized grammar/timing (nullptr before the
  /// first publish). Used by the engine's delta-compile publish path and
  /// the differential tests.
  const Grammar* snapshot_grammar() const {
    return snapshot_ ? snapshot_->grammar : nullptr;
  }
  const TimingModel* snapshot_timing() const {
    return snapshot_ ? snapshot_->timing : nullptr;
  }
  /// Incremental-finalizer stats/hints (nullptr while every publish so
  /// far used full replay).
  const IncrementalFinalizer* finalizer() const { return finalizer_.get(); }

  /// Session access (session-backed variant; nullptr in memory).
  RecordSession* session() { return session_.get(); }
  const RecoveryInfo* recovery() const {
    return session_ ? &session_->recovery() : nullptr;
  }
  void set_registry_sync(RegistrySync sync) {
    registry_sync_ = std::move(sync);
  }

  /// Deterministic digest of the complete oracle state (event count,
  /// ramp state machine, validation window, snapshot cadence + content,
  /// snapshot-predictor tracking state). Two oracles that consumed the
  /// same event log under the same options — e.g. one that was SIGKILLed
  /// and recovered vs. one that never crashed — print the same value.
  std::uint64_t ramp_digest() const;

  /// Ends the run: finalizes the live grammar into a ThreadTrace (and,
  /// session-backed, writes <dir>/trace.pythia via the session's atomic
  /// finish; a failed trace save still returns the in-memory result —
  /// the journal keeps the events recoverable).
  ThreadTrace finish() &&;

 private:
  explicit OnlineOracle(const Options& options);

  /// Score + track + ramp bookkeeping for one event (no learning) —
  /// shared verbatim between live observe() and recovery replay, which
  /// is what makes recovery resume the ramp exactly.
  void witness(TerminalId event);
  void maybe_refresh(std::uint64_t prefix_len);
  void rebuild_snapshot(std::uint64_t prefix_len);
  void record_outcome(bool hit);
  void reset_window();
  /// Re-runs the pipeline over an already-learned log prefix (recovery).
  void replay_history();

  void write_telemetry_sidecar();

  struct Snapshot {
    /// Full rebuilds own their grammar/timing; incremental publishes
    /// point into the finalizer-owned shadow (declared before snapshot_
    /// so the referents outlive the predictor).
    std::unique_ptr<Grammar> owned_grammar;
    std::unique_ptr<TimingModel> owned_timing;
    const Grammar* grammar = nullptr;
    const TimingModel* timing = nullptr;
    std::unique_ptr<Predictor> predictor;  ///< refs grammar/timing above
    std::uint64_t events = 0;              ///< log prefix it covers
    bool incremental = false;
  };

  Options options_;
  std::unique_ptr<Recorder> recorder_;       ///< in-memory variant
  std::unique_ptr<RecordSession> session_;   ///< crash-safe variant
  RegistrySync registry_sync_;
  std::unique_ptr<IncrementalFinalizer> finalizer_;
  std::unique_ptr<Snapshot> snapshot_;
  std::uint64_t next_snapshot_at_ = 0;
  PublishTelemetry telemetry_;
  /// Monotone "any nonzero timestamp in log[0, timestamp_scan_)" scan
  /// state — the per-publish rescan the old rebuild did was itself O(log).
  bool timestamped_seen_ = false;
  std::size_t timestamp_scan_ = 0;

  Ramp ramp_ = Ramp::kLearning;
  std::vector<std::uint8_t> window_;  ///< self-accuracy outcome ring
  std::size_t window_next_ = 0;
  std::size_t window_count_ = 0;
  std::size_t window_hits_ = 0;
  /// Samples required before (re-)serving; doubles per trip, capped at
  /// the window size.
  std::size_t required_samples_ = 0;

  Stats stats_;
  std::vector<RampSample> history_;
};

}  // namespace pythia
