#include "core/compile.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "core/predictor.hpp"
#include "support/assert.hpp"
#include "support/crc32.hpp"

namespace pythia {

namespace {

constexpr std::uint64_t kU64Max = ~0ull;
constexpr std::uint32_t kMaxTableEntries = 1u << 28;

std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) {
  return a > kU64Max - b ? kU64Max : a + b;
}

std::uint64_t sat_mul(std::uint64_t a, std::uint64_t b) {
  if (a == 0 || b == 0) return 0;
  return a > kU64Max / b ? kU64Max : a * b;
}

/// Appends up to kCompiledMaxK terminals of `count` unfoldings of the
/// sequence `terms[0..len)` (itself `unfold_len` terminals long per
/// unfolding; terms holds its first min(unfold_len, k_max)) to `out`.
void append_first_terms(const std::uint32_t* terms, std::uint32_t terms_len,
                        std::uint64_t unfold_len, std::uint64_t count,
                        std::uint32_t* out, std::uint32_t& out_len) {
  for (std::uint64_t rep = 0; rep < count && out_len < kCompiledMaxK; ++rep) {
    for (std::uint32_t i = 0; i < terms_len && out_len < kCompiledMaxK; ++i) {
      out[out_len++] = terms[i];
    }
    // When one unfolding is longer than the table, the table is already
    // full (terms_len == kCompiledMaxK) and the loop above exited.
    if (unfold_len > terms_len) break;
  }
}

/// All intermediate tables of one compile. compile_thread uses a fresh
/// one per call; DeltaCompiler keeps two (current + previous) so buffer
/// capacity persists across publishes and the previous call's tables stay
/// around for byte comparison.
struct CompileScratch {
  std::unordered_map<std::uint32_t, std::uint32_t> rule_index;
  std::vector<CompiledNode> nodes;
  std::vector<std::uint32_t> topo;
  std::vector<int> topo_state;
  std::vector<std::pair<std::uint32_t, const Node*>> topo_stack;
  std::vector<std::uint64_t> rule_len;
  std::vector<std::array<std::uint32_t, kCompiledMaxK>> rule_head_terms;
  std::vector<std::uint32_t> rule_head_len;
  std::vector<CompiledNodeTail> tails;
  std::vector<std::uint32_t> expansions;
  std::vector<std::uint32_t> flat_index;
  std::vector<CompiledRule> rules;
  std::vector<std::uint32_t> users;
  std::vector<CompiledOccSpan> occ_spans;
  std::vector<std::uint32_t> occ_nodes;
  std::vector<CompiledTimingEntry> timing_entries;
  std::vector<CompiledAnchorPred> anchor_pred;
};

template <typename T>
bool same_bytes(const std::vector<T>& a, const std::vector<T>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0);
}

/// Byte equality of every table the anchor-prediction computation can
/// observe: the interpreted predictor sees structure (nodes/tails),
/// occurrence spans and counts, and canonical user lists — not the flat
/// expansions and not timing. Equal tables imply an identical grammar as
/// far as the (deterministic) predictor is concerned, so the previous
/// anchor table is exact, not approximate.
bool same_structure(const CompileScratch& a, const CompileScratch& b) {
  return same_bytes(a.nodes, b.nodes) && same_bytes(a.tails, b.tails) &&
         same_bytes(a.rules, b.rules) &&
         same_bytes(a.occ_spans, b.occ_spans) &&
         same_bytes(a.occ_nodes, b.occ_nodes) && same_bytes(a.users, b.users);
}

/// The single lowering pipeline behind compile_thread and DeltaCompiler.
/// Every table is rebuilt with assign() (zero-filled, capacity reused) so
/// a recycled scratch produces bytes identical to a fresh one. When
/// `prev` holds a structurally identical compile, its anchor-prediction
/// table is copied instead of recomputed (`*anchor_reused` = true).
std::vector<unsigned char> compile_impl(const Grammar& grammar,
                                        const TimingModel* timing,
                                        std::uint64_t grammar_digest,
                                        const CompileOptions& options,
                                        CompileScratch& s,
                                        const CompileScratch* prev,
                                        bool* anchor_reused) {
  if (!grammar.finalized() || grammar.sequence_length() == 0) return {};
  const std::vector<const Rule*> live = grammar.rules();
  if (live.empty() || live.front()->id != 0) return {};
  const std::size_t node_count = grammar.node_count();
  if (node_count == 0 || node_count > kMaxTableEntries ||
      live.size() > kMaxTableEntries) {
    return {};
  }

  // Dense rule indices in creation order (root == 0), matching the
  // PYTHIA02 grammar serialization's remap — a grammar reloaded from the
  // same file reproduces these indices exactly.
  std::unordered_map<std::uint32_t, std::uint32_t>& rule_index = s.rule_index;
  rule_index.clear();
  rule_index.reserve(live.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    rule_index[live[i]->id] = static_cast<std::uint32_t>(i);
  }

  // --- node table ---------------------------------------------------------
  std::vector<CompiledNode>& nodes = s.nodes;
  nodes.assign(node_count, CompiledNode{});
  std::uint32_t max_terminal = 0;
  bool any_terminal = false;
  for (std::size_t i = 0; i < node_count; ++i) {
    const Node* node = grammar.node_by_stable_id(
        static_cast<std::uint32_t>(i));
    CompiledNode out{};
    out.sym_raw = node->sym.raw();
    if (node->sym.is_rule()) {
      // Rewrite rule references to dense indices inside the symbol.
      out.sym_raw = Symbol::rule(rule_index.at(node->sym.rule_id())).raw();
    } else {
      max_terminal = std::max(max_terminal, node->sym.terminal_id());
      any_terminal = true;
    }
    out.next = node->next != nullptr ? node->next->stable_id
                                     : kCompiledInvalid;
    out.owner_rule = rule_index.at(node->owner->id);
    out.exp = node->exp;
    nodes[i] = out;
  }
  if (!any_terminal) return {};
  const std::uint32_t terminal_count = max_terminal + 1;
  if (terminal_count > kMaxTableEntries) return {};

  // --- topological order of rules by body reference (children first) -----
  const std::uint32_t rule_count = static_cast<std::uint32_t>(live.size());
  std::vector<std::uint32_t>& topo = s.topo;
  topo.clear();
  topo.reserve(rule_count);
  {
    std::vector<int>& state = s.topo_state;
    state.assign(rule_count, 0);
    std::vector<std::pair<std::uint32_t, const Node*>>& stack = s.topo_stack;
    stack.clear();
    for (std::uint32_t r = 0; r < rule_count; ++r) {
      if (state[r] != 0) continue;
      state[r] = 1;
      stack.push_back({r, live[r]->head});
      while (!stack.empty()) {
        auto& [rule, node] = stack.back();
        const Node* ref = nullptr;
        while (node != nullptr) {
          if (node->sym.is_rule()) {
            const std::uint32_t sub = rule_index.at(node->sym.rule_id());
            if (state[sub] == 0) {
              ref = node;
              state[sub] = 1;
              node = node->next;
              stack.push_back({sub, live[sub]->head});
              break;
            }
            PYTHIA_ASSERT_MSG(state[sub] == 2, "cycle in rule references");
          }
          node = node->next;
        }
        if (ref != nullptr) continue;
        state[rule] = 2;
        topo.push_back(rule);
        stack.pop_back();
      }
    }
  }

  // --- per-rule expansion lengths and first-k terminals -------------------
  std::vector<std::uint64_t>& rule_len = s.rule_len;
  rule_len.assign(rule_count, 0);
  std::vector<std::array<std::uint32_t, kCompiledMaxK>>& rule_head_terms =
      s.rule_head_terms;
  rule_head_terms.assign(rule_count,
                         std::array<std::uint32_t, kCompiledMaxK>{});
  std::vector<std::uint32_t>& rule_head_len = s.rule_head_len;
  rule_head_len.assign(rule_count, 0);
  for (const std::uint32_t r : topo) {
    std::uint64_t len = 0;
    std::uint32_t head_len = 0;
    std::array<std::uint32_t, kCompiledMaxK>& head = rule_head_terms[r];
    for (const Node* node = live[r]->head; node != nullptr;
         node = node->next) {
      if (node->sym.is_terminal()) {
        len = sat_add(len, node->exp);
        const std::uint32_t term = node->sym.terminal_id();
        append_first_terms(&term, 1, 1, node->exp, head.data(), head_len);
      } else {
        const std::uint32_t sub = rule_index.at(node->sym.rule_id());
        len = sat_add(len, sat_mul(node->exp, rule_len[sub]));
        append_first_terms(rule_head_terms[sub].data(), rule_head_len[sub],
                           rule_len[sub], node->exp, head.data(), head_len);
      }
    }
    PYTHIA_ASSERT(len >= 1);
    rule_len[r] = len;
    rule_head_len[r] = head_len;
  }

  // --- per-node tails -----------------------------------------------------
  std::vector<CompiledNodeTail>& tails = s.tails;
  tails.assign(node_count, CompiledNodeTail{});
  for (std::size_t i = 0; i < node_count; ++i) {
    const Node* node =
        grammar.node_by_stable_id(static_cast<std::uint32_t>(i));
    CompiledNodeTail tail{};
    for (const Node* sib = node->next;
         sib != nullptr && tail.len < kCompiledMaxK; sib = sib->next) {
      if (sib->sym.is_terminal()) {
        const std::uint32_t term = sib->sym.terminal_id();
        append_first_terms(&term, 1, 1, sib->exp, tail.terms, tail.len);
      } else {
        const std::uint32_t sub = rule_index.at(sib->sym.rule_id());
        append_first_terms(rule_head_terms[sub].data(), rule_head_len[sub],
                           rule_len[sub], sib->exp, tail.terms, tail.len);
      }
    }
    tails[i] = tail;
  }

  // --- flat expansion pool (children-first, so sub-rules flatten first) ---
  std::vector<std::uint32_t>& expansions = s.expansions;
  expansions.clear();
  std::vector<std::uint32_t>& flat_index = s.flat_index;
  flat_index.assign(rule_count, kCompiledInvalid);
  for (const std::uint32_t r : topo) {
    const std::uint64_t len = rule_len[r];
    if (len > options.max_flat_expansion ||
        expansions.size() + len > options.max_flat_pool) {
      continue;
    }
    const std::size_t start = expansions.size();
    bool ok = true;
    for (const Node* node = live[r]->head; node != nullptr && ok;
         node = node->next) {
      if (node->sym.is_terminal()) {
        expansions.insert(expansions.end(),
                          static_cast<std::size_t>(node->exp),
                          node->sym.terminal_id());
      } else {
        const std::uint32_t sub = rule_index.at(node->sym.rule_id());
        if (flat_index[sub] == kCompiledInvalid) {
          // A sub-rule over the flat cap makes this rule non-flat too
          // (its length would be over the cap as well; the pool-budget
          // case is the one that actually lands here).
          ok = false;
          break;
        }
        for (std::uint64_t rep = 0; rep < node->exp; ++rep) {
          expansions.insert(
              expansions.end(), expansions.begin() + flat_index[sub],
              expansions.begin() + flat_index[sub] + rule_len[sub]);
        }
      }
    }
    if (ok) {
      flat_index[r] = static_cast<std::uint32_t>(start);
      PYTHIA_ASSERT(expansions.size() - start == len);
    } else {
      expansions.resize(start);
    }
  }
  if (expansions.size() > kMaxTableEntries) return {};

  // --- rule table + canonical user lists ----------------------------------
  std::vector<CompiledRule>& rules = s.rules;
  rules.assign(rule_count, CompiledRule{});
  std::vector<std::uint32_t>& users = s.users;
  users.clear();
  for (std::uint32_t r = 0; r < rule_count; ++r) {
    CompiledRule out{};
    PYTHIA_ASSERT(live[r]->head != nullptr);
    out.head = live[r]->head->stable_id;
    out.users_start = static_cast<std::uint32_t>(users.size());
    out.users_count = static_cast<std::uint32_t>(live[r]->users.size());
    for (const Node* user : live[r]->users) {
      users.push_back(user->stable_id);
    }
    out.flat_index = flat_index[r];
    out.occurrences = live[r]->occurrences;
    out.exp_len = rule_len[r];
    std::copy(rule_head_terms[r].begin(), rule_head_terms[r].end(),
              out.head_terms);
    out.head_len = rule_head_len[r];
    rules[r] = out;
  }

  // --- occurrence spans (prefix-summed counting sort, stable-id order) ----
  std::vector<CompiledOccSpan>& occ_spans = s.occ_spans;
  occ_spans.assign(terminal_count, CompiledOccSpan{});
  std::vector<std::uint32_t>& occ_nodes = s.occ_nodes;
  for (const CompiledNode& node : nodes) {
    const Symbol sym = Symbol::from_raw(node.sym_raw);
    if (sym.is_terminal()) ++occ_spans[sym.terminal_id()].count;
  }
  std::uint32_t offset = 0;
  for (CompiledOccSpan& span : occ_spans) {
    span.start = offset;
    offset += span.count;
    span.count = 0;  // reused as fill cursor
  }
  occ_nodes.assign(offset, 0);
  for (std::uint32_t i = 0; i < node_count; ++i) {
    const Symbol sym = Symbol::from_raw(nodes[i].sym_raw);
    if (!sym.is_terminal()) continue;
    CompiledOccSpan& span = occ_spans[sym.terminal_id()];
    occ_nodes[span.start + span.count++] = i;
    span.total = sat_add(
        span.total,
        sat_mul(nodes[i].exp, rules[nodes[i].owner_rule].occurrences));
  }

  // --- timing table (sorted by key; global follows load semantics) --------
  std::vector<CompiledTimingEntry>& timing_entries = s.timing_entries;
  timing_entries.clear();
  double timing_global_sum = 0.0;
  std::uint64_t timing_global_count = 0;
  const bool has_timing = timing != nullptr && !timing->empty();
  if (has_timing) {
    timing_entries.reserve(timing->contexts().size());
    for (const auto& [key, stat] : timing->contexts()) {
      timing_entries.push_back({key, stat.sum_ns, stat.count});
    }
    std::sort(timing_entries.begin(), timing_entries.end(),
              [](const CompiledTimingEntry& a, const CompiledTimingEntry& b) {
                return a.key < b.key;
              });
    // Accumulate in sorted order so the blob bytes are deterministic
    // (floating-point addition is order-sensitive; the map order is not).
    for (const CompiledTimingEntry& entry : timing_entries) {
      timing_global_sum += entry.sum_ns;
      timing_global_count += entry.count;
    }
  }

  // --- anchor-prediction table --------------------------------------------
  // predict(k) right after anchoring on t is a pure function of the
  // grammar and the predictor caps: run the interpreted predictor once
  // per occurring terminal at compile time and bake the answers in — or,
  // when the grammar tables are byte-identical to the previous compile's,
  // reuse its answers (the timing-only-change fast path).
  std::vector<CompiledAnchorPred>& anchor_pred = s.anchor_pred;
  if (prev != nullptr && same_structure(s, *prev)) {
    anchor_pred = prev->anchor_pred;
    PYTHIA_ASSERT(anchor_pred.size() ==
                  static_cast<std::size_t>(terminal_count) * kCompiledMaxK);
    if (anchor_reused != nullptr) *anchor_reused = true;
  } else {
    anchor_pred.assign(static_cast<std::size_t>(terminal_count) *
                           kCompiledMaxK,
                       CompiledAnchorPred{kCompiledInvalid, 0, 0.0});
    Predictor::Options popts;
    popts.max_candidates = options.max_candidates;
    popts.max_anchor_paths = options.max_anchor_paths;
    for (std::uint32_t t = 0; t < terminal_count; ++t) {
      if (occ_spans[t].count == 0) continue;
      Predictor predictor(grammar, nullptr, popts);
      predictor.observe(t);
      for (std::uint32_t k = 1; k <= kCompiledMaxK; ++k) {
        const std::optional<Prediction> p = predictor.predict(k);
        if (p.has_value()) {
          anchor_pred[static_cast<std::size_t>(t) * kCompiledMaxK + k - 1] =
              {p->event, 0, p->probability};
        }
      }
    }
  }

  // --- assemble the blob --------------------------------------------------
  const std::uint64_t table_bytes[kCompiledTableCount] = {
      nodes.size() * sizeof(CompiledNode),
      tails.size() * sizeof(CompiledNodeTail),
      rules.size() * sizeof(CompiledRule),
      occ_spans.size() * sizeof(CompiledOccSpan),
      occ_nodes.size() * sizeof(std::uint32_t),
      users.size() * sizeof(std::uint32_t),
      expansions.size() * sizeof(std::uint32_t),
      24 + timing_entries.size() * sizeof(CompiledTimingEntry),
      anchor_pred.size() * sizeof(CompiledAnchorPred),
  };

  CompiledHeader header{};
  std::memcpy(header.magic, kCompiledMagic, sizeof header.magic);
  header.header_bytes = sizeof(CompiledHeader);
  header.k_max = kCompiledMaxK;
  header.node_count = static_cast<std::uint32_t>(node_count);
  header.rule_count = rule_count;
  header.terminal_count = terminal_count;
  header.max_candidates = static_cast<std::uint32_t>(options.max_candidates);
  header.max_anchor_paths =
      static_cast<std::uint32_t>(options.max_anchor_paths);
  header.flags = has_timing ? kCompiledFlagTiming : 0;
  header.sequence_length = grammar.sequence_length();
  header.grammar_digest = grammar_digest;

  std::uint64_t cursor = sizeof(CompiledHeader);
  for (std::uint32_t i = 0; i < kCompiledTableCount; ++i) {
    cursor = (cursor + 63) & ~63ull;  // 64-byte aligned table starts
    header.tables[i].offset = cursor;
    header.tables[i].bytes = table_bytes[i];
    cursor += table_bytes[i];
  }
  header.blob_bytes = cursor;
  static constexpr std::uint32_t kEntrySizes[kCompiledTableCount] = {
      sizeof(CompiledNode),   sizeof(CompiledNodeTail), sizeof(CompiledRule),
      sizeof(CompiledOccSpan), 4, 4, 4, sizeof(CompiledTimingEntry),
      sizeof(CompiledAnchorPred)};
  for (std::uint32_t i = 0; i < kCompiledTableCount; ++i) {
    header.tables[i].entry_size = kEntrySizes[i];
  }

  std::vector<unsigned char> blob(cursor, 0);
  auto fill = [&](std::uint32_t table, const void* data, std::size_t bytes) {
    if (bytes > 0) {
      std::memcpy(blob.data() + header.tables[table].offset, data, bytes);
    }
  };
  fill(kTableNodes, nodes.data(), table_bytes[kTableNodes]);
  fill(kTableTails, tails.data(), table_bytes[kTableTails]);
  fill(kTableRules, rules.data(), table_bytes[kTableRules]);
  fill(kTableOccSpans, occ_spans.data(), table_bytes[kTableOccSpans]);
  fill(kTableOccNodes, occ_nodes.data(), table_bytes[kTableOccNodes]);
  fill(kTableUsers, users.data(), table_bytes[kTableUsers]);
  fill(kTableExpansions, expansions.data(), table_bytes[kTableExpansions]);
  {
    unsigned char* timing_out =
        blob.data() + header.tables[kTableTiming].offset;
    const std::uint64_t count = timing_entries.size();
    std::memcpy(timing_out, &count, 8);
    std::memcpy(timing_out + 8, &timing_global_sum, 8);
    std::memcpy(timing_out + 16, &timing_global_count, 8);
    if (!timing_entries.empty()) {
      std::memcpy(timing_out + 24, timing_entries.data(),
                  timing_entries.size() * sizeof(CompiledTimingEntry));
    }
  }
  fill(kTableAnchorPred, anchor_pred.data(), table_bytes[kTableAnchorPred]);

  for (std::uint32_t i = 0; i < kCompiledTableCount; ++i) {
    header.tables[i].crc =
        support::crc32(blob.data() + header.tables[i].offset,
                       header.tables[i].bytes);
  }
  std::memcpy(blob.data(), &header, sizeof header);
  return blob;
}

}  // namespace

std::vector<unsigned char> compile_thread(const Grammar& grammar,
                                          const TimingModel* timing,
                                          std::uint64_t grammar_digest,
                                          const CompileOptions& options) {
  CompileScratch scratch;
  return compile_impl(grammar, timing, grammar_digest, options, scratch,
                      nullptr, nullptr);
}

// --- DeltaCompiler ---------------------------------------------------------

struct DeltaCompiler::Impl {
  CompileOptions options;
  CompileScratch scratch[2];  ///< double buffer: current + previous compile
  int cur = 0;
  bool prev_valid = false;
  std::vector<unsigned char> blob;  ///< last blob, for whole-blob reuse
  std::uint64_t digest = 0;
  Stats stats;
};

DeltaCompiler::DeltaCompiler() : DeltaCompiler(CompileOptions{}) {}

DeltaCompiler::DeltaCompiler(const CompileOptions& options)
    : impl_(std::make_unique<Impl>()) {
  impl_->options = options;
}

DeltaCompiler::~DeltaCompiler() = default;
DeltaCompiler::DeltaCompiler(DeltaCompiler&&) noexcept = default;
DeltaCompiler& DeltaCompiler::operator=(DeltaCompiler&&) noexcept = default;

const DeltaCompiler::Stats& DeltaCompiler::stats() const {
  return impl_->stats;
}

std::vector<unsigned char> DeltaCompiler::compile(
    const Grammar& grammar, const TimingModel* timing,
    std::uint64_t grammar_digest) {
  Impl& im = *impl_;
  ++im.stats.compiles;
  // The digest covers the grammar serialization bytes *and* the timing
  // contexts (thread_section_digest) — equality means nothing the blob
  // depends on has changed. Same trust level as the load-time digest
  // cross-check.
  if (!im.blob.empty() && grammar_digest == im.digest) {
    ++im.stats.blob_reused;
    return im.blob;
  }
  const int cur = im.prev_valid ? (im.cur ^ 1) : im.cur;
  bool anchor_reused = false;
  std::vector<unsigned char> blob = compile_impl(
      grammar, timing, grammar_digest, im.options, im.scratch[cur],
      im.prev_valid ? &im.scratch[cur ^ 1] : nullptr, &anchor_reused);
  if (blob.empty()) {
    // Non-compilable input leaves the scratch half-built: drop the caches
    // so the next call starts from a clean slate.
    im.prev_valid = false;
    im.blob.clear();
    im.digest = 0;
    return blob;
  }
  im.cur = cur;
  im.prev_valid = true;
  if (anchor_reused) {
    ++im.stats.anchor_reused;
  } else {
    ++im.stats.full;
  }
  im.digest = grammar_digest;
  im.blob = blob;
  return blob;
}

// --- validation ------------------------------------------------------------

bool CompiledView::timing_lookup(std::uint64_t key, double& mean_ns) const {
  const CompiledTimingEntry* end = timing_ + timing_count_;
  const CompiledTimingEntry* it = std::lower_bound(
      timing_, end, key,
      [](const CompiledTimingEntry& e, std::uint64_t k) { return e.key < k; });
  if (it == end || it->key != key) return false;
  mean_ns = it->count > 0 ? it->sum_ns / static_cast<double>(it->count) : 0.0;
  return true;
}

Result<CompiledView> CompiledView::parse(const unsigned char* data,
                                         std::size_t size,
                                         const ParseOptions& options) {
  auto corrupt = [](const char* what) {
    return Status::corrupt(std::string("compiled section: ") + what);
  };
  if (data == nullptr ||
      (reinterpret_cast<std::uintptr_t>(data) & 7u) != 0) {
    return corrupt("misaligned blob");
  }
  if (size < sizeof(CompiledHeader)) return corrupt("truncated header");

  CompiledHeader header;
  std::memcpy(&header, data, sizeof header);
  if (std::memcmp(header.magic, kCompiledMagic, sizeof header.magic) != 0) {
    return corrupt("bad magic");
  }
  if (header.header_bytes != sizeof(CompiledHeader)) {
    return corrupt("header size");
  }
  if (header.k_max != kCompiledMaxK) return corrupt("k_max");
  if (header.blob_bytes != size) return corrupt("blob size");
  if (header.node_count == 0 || header.node_count > kMaxTableEntries ||
      header.rule_count == 0 || header.rule_count > kMaxTableEntries ||
      header.terminal_count == 0 ||
      header.terminal_count > kMaxTableEntries) {
    return corrupt("table counts");
  }
  if (header.sequence_length == 0) return corrupt("sequence length");

  static constexpr std::uint32_t kEntrySizes[kCompiledTableCount] = {
      sizeof(CompiledNode),   sizeof(CompiledNodeTail), sizeof(CompiledRule),
      sizeof(CompiledOccSpan), 4, 4, 4, sizeof(CompiledTimingEntry),
      sizeof(CompiledAnchorPred)};
  for (std::uint32_t i = 0; i < kCompiledTableCount; ++i) {
    const CompiledTableDesc& desc = header.tables[i];
    if (desc.entry_size != kEntrySizes[i]) return corrupt("entry size");
    if ((desc.offset & 7u) != 0 || desc.offset > size ||
        desc.bytes > size - desc.offset) {
      return corrupt("table bounds");
    }
  }
  const CompiledTableDesc* tables = header.tables;
  const std::uint64_t n = header.node_count;
  const std::uint64_t r = header.rule_count;
  const std::uint64_t t = header.terminal_count;
  if (tables[kTableNodes].bytes != n * sizeof(CompiledNode) ||
      tables[kTableTails].bytes != n * sizeof(CompiledNodeTail) ||
      tables[kTableRules].bytes != r * sizeof(CompiledRule) ||
      tables[kTableOccSpans].bytes != t * sizeof(CompiledOccSpan) ||
      (tables[kTableOccNodes].bytes & 3u) != 0 ||
      (tables[kTableUsers].bytes & 3u) != 0 ||
      (tables[kTableExpansions].bytes & 3u) != 0 ||
      tables[kTableTiming].bytes < 24 ||
      ((tables[kTableTiming].bytes - 24) % sizeof(CompiledTimingEntry)) != 0 ||
      tables[kTableAnchorPred].bytes !=
          t * kCompiledMaxK * sizeof(CompiledAnchorPred)) {
    return corrupt("table sizes");
  }

  if (options.verify_checksums) {
    for (std::uint32_t i = 0; i < kCompiledTableCount; ++i) {
      if (support::crc32(data + tables[i].offset, tables[i].bytes) !=
          tables[i].crc) {
        return corrupt("table checksum");
      }
    }
  }

  CompiledView view;
  view.data_ = data;
  view.size_ = size;
  view.nodes_ = reinterpret_cast<const CompiledNode*>(
      data + tables[kTableNodes].offset);
  view.tails_ = reinterpret_cast<const CompiledNodeTail*>(
      data + tables[kTableTails].offset);
  view.rules_ = reinterpret_cast<const CompiledRule*>(
      data + tables[kTableRules].offset);
  view.occ_spans_ = reinterpret_cast<const CompiledOccSpan*>(
      data + tables[kTableOccSpans].offset);
  view.occ_nodes_ = reinterpret_cast<const std::uint32_t*>(
      data + tables[kTableOccNodes].offset);
  view.users_ = reinterpret_cast<const std::uint32_t*>(
      data + tables[kTableUsers].offset);
  view.expansions_ = reinterpret_cast<const std::uint32_t*>(
      data + tables[kTableExpansions].offset);
  const unsigned char* timing_raw = data + tables[kTableTiming].offset;
  std::memcpy(&view.timing_count_, timing_raw, 8);
  std::memcpy(&view.timing_global_sum_, timing_raw + 8, 8);
  std::memcpy(&view.timing_global_count_, timing_raw + 16, 8);
  view.timing_ =
      reinterpret_cast<const CompiledTimingEntry*>(timing_raw + 24);
  if (view.timing_count_ !=
      (tables[kTableTiming].bytes - 24) / sizeof(CompiledTimingEntry)) {
    return corrupt("timing count");
  }
  view.anchor_pred_ = reinterpret_cast<const CompiledAnchorPred*>(
      data + tables[kTableAnchorPred].offset);

  const std::uint64_t occ_count = tables[kTableOccNodes].bytes / 4;
  const std::uint64_t users_count = tables[kTableUsers].bytes / 4;
  const std::uint64_t pool_count = tables[kTableExpansions].bytes / 4;

  // Structural validation: after this pass every index stored in any
  // table is known in-range and the rule graph is known acyclic, so the
  // predictor can walk the tables without per-access checks.
  std::vector<std::uint32_t> term_refs(t, 0);
  std::vector<std::uint32_t> rule_refs(r, 0);
  for (std::uint64_t i = 0; i < n; ++i) {
    const CompiledNode& node = view.nodes_[i];
    if (node.exp == 0) return corrupt("node exponent");
    const Symbol sym = Symbol::from_raw(node.sym_raw);
    if (sym.is_terminal()) {
      if (sym.terminal_id() >= t) return corrupt("node terminal");
      ++term_refs[sym.terminal_id()];
    } else {
      if (sym.rule_id() >= r) return corrupt("node rule ref");
      ++rule_refs[sym.rule_id()];
    }
    if (node.next != kCompiledInvalid && node.next >= n) {
      return corrupt("node next");
    }
    if (node.owner_rule >= r) return corrupt("node owner");
    const CompiledNodeTail& tail = view.tails_[i];
    if (tail.len > kCompiledMaxK) return corrupt("tail length");
    for (std::uint32_t k = 0; k < tail.len; ++k) {
      if (tail.terms[k] >= t) return corrupt("tail term");
    }
  }

  // Body chains: every node appears in exactly one rule's head->next
  // walk, owned by that rule (also rejects next-pointer cycles).
  std::vector<std::uint8_t> chained(n, 0);
  std::uint64_t chained_total = 0;
  for (std::uint64_t ri = 0; ri < r; ++ri) {
    const CompiledRule& rule = view.rules_[ri];
    if (rule.head >= n) return corrupt("rule head");
    std::uint32_t id = rule.head;
    while (id != kCompiledInvalid) {
      if (chained[id]) return corrupt("body chain");
      if (view.nodes_[id].owner_rule != ri) return corrupt("body owner");
      chained[id] = 1;
      ++chained_total;
      id = view.nodes_[id].next;
    }
    if (rule.occurrences == 0) return corrupt("rule occurrences");
    if (rule.exp_len == 0) return corrupt("rule length");
    const std::uint32_t expect_head_len =
        rule.exp_len < kCompiledMaxK
            ? static_cast<std::uint32_t>(rule.exp_len)
            : kCompiledMaxK;
    if (rule.head_len != expect_head_len) return corrupt("rule head terms");
    for (std::uint32_t k = 0; k < rule.head_len; ++k) {
      if (rule.head_terms[k] >= t) return corrupt("rule head term");
    }
    if (static_cast<std::uint64_t>(rule.users_start) + rule.users_count >
        users_count) {
      return corrupt("user span");
    }
    if (rule.flat_index != kCompiledInvalid &&
        (rule.exp_len > pool_count ||
         rule.flat_index > pool_count - rule.exp_len)) {
      return corrupt("flat span");
    }
  }
  if (chained_total != n) return corrupt("orphan nodes");

  // User lists: each rule's span must list exactly the nodes that
  // reference it, each node once (a partition of the rule-ref nodes).
  std::vector<std::uint8_t> user_seen(n, 0);
  for (std::uint64_t ri = 0; ri < r; ++ri) {
    const CompiledRule& rule = view.rules_[ri];
    if (rule.users_count != rule_refs[ri]) return corrupt("user count");
    for (std::uint32_t u = 0; u < rule.users_count; ++u) {
      const std::uint32_t id = view.users_[rule.users_start + u];
      if (id >= n || user_seen[id]) return corrupt("user entry");
      const Symbol sym = Symbol::from_raw(view.nodes_[id].sym_raw);
      if (!sym.is_rule() || sym.rule_id() != ri) return corrupt("user sym");
      user_seen[id] = 1;
    }
  }

  // Rule references must be acyclic, or anchoring/emission would not
  // terminate. Iterative coloring over the body-reference graph.
  {
    std::vector<std::uint8_t> state(r, 0);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> stack;
    for (std::uint32_t start = 0; start < r; ++start) {
      if (state[start] != 0) continue;
      state[start] = 1;
      stack.push_back({start, view.rules_[start].head});
      while (!stack.empty()) {
        auto& [ri, id] = stack.back();
        bool descended = false;
        while (id != kCompiledInvalid) {
          const Symbol sym = Symbol::from_raw(view.nodes_[id].sym_raw);
          const std::uint32_t next = view.nodes_[id].next;
          if (sym.is_rule()) {
            const std::uint32_t sub = sym.rule_id();
            if (state[sub] == 1) return corrupt("rule cycle");
            if (state[sub] == 0) {
              state[sub] = 1;
              id = next;
              stack.push_back({sub, view.rules_[sub].head});
              descended = true;
              break;
            }
          }
          id = next;
        }
        if (descended) continue;
        state[ri] = 2;
        stack.pop_back();
      }
    }
  }

  // Occurrence spans: a partition of the terminal nodes, grouped by
  // terminal, with totals matching the node/rule tables.
  std::vector<std::uint8_t> occ_seen(n, 0);
  for (std::uint64_t ti = 0; ti < t; ++ti) {
    const CompiledOccSpan& span = view.occ_spans_[ti];
    if (static_cast<std::uint64_t>(span.start) + span.count > occ_count) {
      return corrupt("occurrence span");
    }
    if (span.count != term_refs[ti]) return corrupt("occurrence count");
    std::uint64_t total = 0;
    for (std::uint32_t i = 0; i < span.count; ++i) {
      const std::uint32_t id = view.occ_nodes_[span.start + i];
      if (id >= n || occ_seen[id]) return corrupt("occurrence entry");
      const CompiledNode& node = view.nodes_[id];
      const Symbol sym = Symbol::from_raw(node.sym_raw);
      if (!sym.is_terminal() || sym.terminal_id() != ti) {
        return corrupt("occurrence sym");
      }
      occ_seen[id] = 1;
      total = sat_add(
          total,
          sat_mul(node.exp, view.rules_[node.owner_rule].occurrences));
    }
    if (span.total != total) return corrupt("occurrence total");
  }

  for (std::uint64_t i = 0; i < pool_count; ++i) {
    if (view.expansions_[i] >= t) return corrupt("expansion term");
  }

  for (std::uint64_t i = 0; i < view.timing_count_; ++i) {
    const CompiledTimingEntry& entry = view.timing_[i];
    if (i > 0 && view.timing_[i - 1].key >= entry.key) {
      return corrupt("timing order");
    }
    if (entry.count == 0 || !std::isfinite(entry.sum_ns)) {
      return corrupt("timing entry");
    }
  }
  if (!std::isfinite(view.timing_global_sum_)) {
    return corrupt("timing global");
  }

  const std::uint64_t pred_count =
      t * static_cast<std::uint64_t>(kCompiledMaxK);
  for (std::uint64_t i = 0; i < pred_count; ++i) {
    const CompiledAnchorPred& pred = view.anchor_pred_[i];
    if (pred.event == kCompiledInvalid) continue;
    if (pred.event >= t || !std::isfinite(pred.probability) ||
        pred.probability < 0.0 || pred.probability > 1.0) {
      return corrupt("anchor prediction");
    }
  }

  return view;
}

}  // namespace pythia
