// High-level per-thread session facade used by runtime-system shims.
//
// A runtime system holds one Oracle per thread/rank and drives it in one
// of these modes (mirroring the paper's evaluation setups):
//   off     — vanilla run, events are dropped (baseline);
//   record  — PYTHIA-RECORD: events reduce into a grammar;
//   predict — PYTHIA-PREDICT: events track the loaded reference trace and
//             the runtime may ask for event/duration predictions;
//   online  — learn-while-running: no reference trace; events both build
//             the grammar and (once the confidence ramp opens) answer
//             predict queries mid-run.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/compiled_predictor.hpp"
#include "core/online_oracle.hpp"
#include "core/predictor.hpp"
#include "core/recorder.hpp"
#include "support/assert.hpp"

namespace pythia {

/// Destination for an event stream that is consumed somewhere other than
/// inside the submitting oracle — e.g. the parallel engine's per-rank ring
/// buffers (engine::RecordEngine::Producer implements this). Must accept
/// submissions from exactly one thread at a time.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void submit(TerminalId event, std::uint64_t now_ns) = 0;
};

class Oracle {
 public:
  enum class Mode { kOff, kRecord, kPredict, kSink, kOnline };

  /// Baseline: all calls are cheap no-ops.
  static Oracle off() { return Oracle(Mode::kOff); }

  /// Reference execution; `timestamps` enables duration modelling.
  static Oracle record(bool timestamps) {
    Oracle oracle(Mode::kRecord);
    oracle.recorder_ = std::make_unique<Recorder>(
        Recorder::Options{.record_timestamps = timestamps});
    return oracle;
  }

  /// Asynchronous recording: events are forwarded to `sink` (which must
  /// outlive the oracle) instead of being reduced in-line. The harness
  /// uses this to route a rank's stream into the engine's SPSC ring; the
  /// submitting thread pays only the enqueue. finish() on a sink oracle
  /// returns an empty trace — the sink's owner (the engine) holds the
  /// recorder and produces the ThreadTrace.
  static Oracle record_into(EventSink& sink) {
    Oracle oracle(Mode::kSink);
    oracle.sink_ = &sink;
    return oracle;
  }

  /// Subsequent execution; `trace` must outlive the oracle. When the
  /// trace carries a validated compiled section, serving runs on the
  /// zero-copy CompiledPredictor (identical answers, flat-table speed);
  /// otherwise on the interpreted Predictor over the grammar.
  static Oracle predict(const ThreadTrace& trace,
                        Predictor::Options options = {}) {
    Oracle oracle(Mode::kPredict);
    if (trace.compiled.valid()) {
      oracle.compiled_ =
          std::make_unique<CompiledPredictor>(trace.compiled, options);
    } else {
      oracle.predictor_ = std::make_unique<Predictor>(
          trace.grammar, trace.timing.empty() ? nullptr : &trace.timing,
          options);
    }
    return oracle;
  }

  /// Learn-while-running (ROADMAP item 3): no reference trace; the oracle
  /// builds the grammar live and starts answering predictions once the
  /// OnlineOracle's confidence ramp clears. State dies with the process.
  static Oracle online(const OnlineOracle::Options& options = {}) {
    Oracle oracle(Mode::kOnline);
    oracle.online_ =
        std::make_unique<OnlineOracle>(OnlineOracle::in_memory(options));
    return oracle;
  }

  /// Crash-safe online mode: events journal into `dir` before they are
  /// learned; reopening after a SIGKILL recovers event-for-event and
  /// resumes the confidence ramp.
  static Result<Oracle> online_in(const std::string& dir,
                                  const OnlineOracle::Options& options = {},
                                  const SessionOptions& session = {}) {
    Result<OnlineOracle> opened = OnlineOracle::open(dir, options, session);
    if (!opened.ok()) return opened.status();
    Oracle oracle(Mode::kOnline);
    oracle.online_ = std::make_unique<OnlineOracle>(opened.take());
    return oracle;
  }

  Mode mode() const { return mode_; }
  bool recording() const { return mode_ == Mode::kRecord; }
  bool predicting() const { return mode_ == Mode::kPredict; }
  /// True when predict queries may answer right now: always in predict
  /// mode (modulo the breaker, which `degraded()` reports), and in online
  /// mode only while the confidence ramp serves. THE gate consumers check
  /// (together with `degraded()`) before acting on the oracle instead of
  /// their vanilla policy.
  bool serving() const {
    return mode_ == Mode::kPredict ||
           (mode_ == Mode::kOnline && online_->serving());
  }

  /// Telemetry hook invoked after every submitted event (any mode). The
  /// experiment harness uses it to score predictions against the events
  /// that actually happened.
  void set_event_hook(std::function<void(TerminalId, std::uint64_t)> hook) {
    event_hook_ = std::move(hook);
  }

  /// Perturbation hook (fault injection, harness::EventFaultInjector):
  /// rewrites each submitted event into the zero or more events the oracle
  /// actually observes — modelling a lossy/noisy instrumentation channel
  /// (dropped, duplicated, reordered or corrupted probes). The telemetry
  /// hook still sees the unperturbed stream: faults change what the oracle
  /// believes, not what the application did.
  using EventFilter = std::function<void(TerminalId, std::vector<TerminalId>&)>;
  void set_event_filter(EventFilter filter) {
    event_filter_ = std::move(filter);
  }

  /// Submits an event (both record and predict modes consume events; the
  /// predict side uses them to follow the application's progress).
  void event(TerminalId id, std::uint64_t now_ns = 0) {
    if (event_hook_) event_hook_(id, now_ns);
    if (!event_filter_) {
      deliver(id, now_ns);
      return;
    }
    filter_scratch_.clear();
    event_filter_(id, filter_scratch_);
    for (TerminalId delivered : filter_scratch_) deliver(delivered, now_ns);
  }

  /// Event expected `distance` events from now (predict/online modes;
  /// online answers only while the ramp serves).
  std::optional<Prediction> predict_event(std::size_t distance) const {
    if (mode_ == Mode::kOnline) return online_->predict(distance);
    if (mode_ != Mode::kPredict) return std::nullopt;
    return compiled_ ? compiled_->predict(distance)
                     : predictor_->predict(distance);
  }

  /// Expected delay until the event `distance` steps ahead.
  std::optional<double> predict_time_ns(std::size_t distance) const {
    if (mode_ == Mode::kOnline) return online_->predict_time_ns(distance);
    if (mode_ != Mode::kPredict) return std::nullopt;
    return compiled_ ? compiled_->predict_time_ns(distance)
                     : predictor_->predict_time_ns(distance);
  }

  /// Circuit-breaker state of the underlying predictor (§II-B2 graceful
  /// degradation). Off/record sessions report kHealthy: they never serve
  /// predictions, so there is nothing to distrust. Online sessions report
  /// kDegraded the whole time the ramp withholds, so `degraded()` keeps
  /// every consumer on its vanilla policy until the oracle earns trust.
  Health health() const {
    if (mode_ == Mode::kOnline) return online_->health();
    if (mode_ != Mode::kPredict) return Health::kHealthy;
    return compiled_ ? compiled_->health() : predictor_->health();
  }
  /// Fraction of recent events that matched the reference trace (online:
  /// the rolling self-accuracy; 1.0 when not predicting).
  double confidence() const {
    if (mode_ == Mode::kOnline) return online_->confidence();
    if (mode_ != Mode::kPredict) return 1.0;
    return compiled_ ? compiled_->confidence() : predictor_->confidence();
  }
  /// True when predictions are currently not trustworthy — the one check
  /// consumers make before acting on the oracle instead of their vanilla
  /// policy. Recovering counts as degraded: trust returns only with
  /// kHealthy.
  bool degraded() const { return health() != Health::kHealthy; }

  /// Ends a recording session and yields the thread trace. Calling it in
  /// any other mode is tolerated (no-throw boundary): it returns an empty
  /// finalized trace that records nothing and predicts nothing.
  ThreadTrace finish() {
    if (mode_ == Mode::kOnline) {
      ThreadTrace trace = std::move(*online_).finish();
      online_.reset();
      mode_ = Mode::kOff;
      return trace;
    }
    if (mode_ != Mode::kRecord) {
      ThreadTrace empty;
      empty.grammar.finalize();
      return empty;
    }
    ThreadTrace trace = std::move(*recorder_).finish();
    recorder_.reset();
    mode_ = Mode::kOff;
    return trace;
  }

  Recorder* recorder() { return recorder_.get(); }
  /// The online learn-while-running engine; nullptr outside kOnline.
  OnlineOracle* online_oracle() { return online_.get(); }
  const OnlineOracle* online_oracle() const { return online_.get(); }
  /// The interpreted predictor; nullptr in compiled serving (consumers
  /// should prefer the engine-agnostic accessors below).
  Predictor* predictor() { return predictor_.get(); }
  const Predictor* predictor() const { return predictor_.get(); }
  const CompiledPredictor* compiled_predictor() const {
    return compiled_.get();
  }
  /// True when predictions are served from a compiled trace artifact.
  bool using_compiled() const { return compiled_ != nullptr; }

  /// Tracking telemetry, whichever prediction engine is live (a static
  /// all-zero struct outside predict mode).
  const Predictor::Stats& predictor_stats() const {
    static const Predictor::Stats kNone{};
    if (compiled_) return compiled_->stats();
    if (predictor_) return predictor_->stats();
    if (online_) return online_->predictor_stats();
    return kNone;
  }

  /// Occurrences of `event` in the whole reference execution (online: in
  /// the current snapshot, 0 while withheld). O(1) on the compiled engine.
  std::uint64_t reference_occurrences(TerminalId event) const {
    if (compiled_) return compiled_->reference_occurrences(event);
    if (predictor_) return predictor_->reference_occurrences(event);
    if (online_) return online_->reference_occurrences(event);
    return 0;
  }

 private:
  explicit Oracle(Mode mode) : mode_(mode) {}

  void deliver(TerminalId id, std::uint64_t now_ns) {
    switch (mode_) {
      case Mode::kOff:
        break;
      case Mode::kRecord:
        recorder_->record(id, now_ns);
        break;
      case Mode::kPredict:
        if (compiled_) {
          compiled_->observe(id);
        } else {
          predictor_->observe(id);
        }
        break;
      case Mode::kSink:
        sink_->submit(id, now_ns);
        break;
      case Mode::kOnline:
        online_->observe(id, now_ns);
        break;
    }
  }

  Mode mode_;
  std::unique_ptr<Recorder> recorder_;
  std::unique_ptr<Predictor> predictor_;
  std::unique_ptr<CompiledPredictor> compiled_;
  std::unique_ptr<OnlineOracle> online_;
  EventSink* sink_ = nullptr;
  std::function<void(TerminalId, std::uint64_t)> event_hook_;
  EventFilter event_filter_;
  std::vector<TerminalId> filter_scratch_;
};

}  // namespace pythia
