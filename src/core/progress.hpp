// Progress sequences (paper §II-B, figures 4–6).
//
// A progress sequence denotes one occurrence of an event in the reference
// execution: the path from the terminal occurrence node up to the grammar
// root. Because occurrences carry repetition exponents, each path element
// also records *which* repetition of the node the position refers to.
#pragma once

#include <cstdint>
#include <vector>

#include "core/grammar.hpp"
#include "core/symbol.hpp"
#include "support/assert.hpp"
#include "support/small_vec.hpp"

namespace pythia {

/// One level of a progress sequence: an occurrence node plus the current
/// repetition index in [0, node->exp).
struct PathElement {
  const Node* node;
  std::uint64_t rep;

  friend bool operator==(const PathElement& a, const PathElement& b) {
    return a.node == b.node && a.rep == b.rep;
  }
};

/// A position in the unfolded reference trace, stored terminal-first:
/// element 0 is the terminal occurrence, the last element lives in the
/// root body (cf. fig. 4, where the fourth `a` of "abcabdababc" is the
/// progress sequence "aAB").
class ProgressPath {
 public:
  /// Paths this deep or shallower live entirely inline: copying and
  /// advancing them in the predictor's per-event loop touches no allocator
  /// (real grammars nest a handful of levels; see docs/PERF.md).
  static constexpr std::size_t kInlineDepth = 12;

  ProgressPath() = default;
  explicit ProgressPath(const std::vector<PathElement>& elements) {
    elements_.assign(elements.data(), elements.size());
  }

  /// Replaces the contents (allocation-free while `count` fits the
  /// current capacity). Used by the enumeration/anchoring hot path.
  void assign(const PathElement* data, std::size_t count) {
    elements_.assign(data, count);
  }

  /// Anchored position of the very first event of the trace.
  static ProgressPath begin(const Grammar& grammar);

  bool empty() const { return elements_.empty(); }
  std::size_t depth() const { return elements_.size(); }
  const PathElement& element(std::size_t level) const {
    return elements_[level];
  }

  const Node* terminal_node() const { return elements_.front().node; }
  TerminalId terminal() const {
    return elements_.front().node->sym.terminal_id();
  }

  /// Jumps `delta` repetitions forward inside the front terminal node's
  /// exponent run without simulating the intermediate advances. The
  /// grammar-domain diff (src/analysis/diff.cpp) uses this to absorb a
  /// whole `t^e` run in O(1); the result must stay inside the run.
  void bump_front_rep(std::uint64_t delta) {
    PathElement& front = elements_[0];
    PYTHIA_ASSERT_MSG(front.rep + delta < front.node->exp,
                      "bump_front_rep past the exponent run");
    front.rep += delta;
  }

  /// Depth-first successor (fig. 5). Returns false when the position was
  /// the last event of the reference trace (the path becomes empty).
  bool advance(const Grammar& grammar);

  /// Terminal that advance() would land on, without copying or mutating
  /// the path — the predict(1) hot path skips the full path simulation.
  /// Returns false when the position is the last event of the trace.
  bool peek_next(const Grammar& grammar, TerminalId& out) const;

  /// Prior weight of this position: how often the enclosing occurrence
  /// executes in the reference trace (paper §II-C occurrence counting).
  /// Requires a finalized grammar.
  std::uint64_t weight() const {
    const Node* node = terminal_node();
    return node->owner->occurrences * node->exp;
  }

  std::uint64_t hash() const;

  friend bool operator==(const ProgressPath& a, const ProgressPath& b) {
    return a.elements_ == b.elements_;
  }

  /// Enumerates progress sequences for every occurrence of `event` in the
  /// grammar (used for initial anchoring and for re-anchoring after an
  /// unexpected event, §II-B2). Ancestor repetition indices are set to 0;
  /// for terminals with exponent > 1 both the first and the last phase are
  /// produced, so "mid-run" and "end-of-run" futures are represented.
  /// Stops after `limit` paths.
  static void enumerate_occurrences(const Grammar& grammar, TerminalId event,
                                    std::size_t limit,
                                    std::vector<ProgressPath>& out);

  /// Key of the first `levels` elements by stable node id (repetition
  /// indices excluded): the timing model's context key (fig. 6).
  std::uint64_t suffix_key(std::size_t levels) const;

 private:
  support::SmallVec<PathElement, kInlineDepth> elements_;
};

}  // namespace pythia
