#include "core/grammar.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "core/event.hpp"
#include "support/assert.hpp"

namespace pythia {

namespace {
constexpr int kMaxAppendDepth = 10000;
constexpr int kMaxCascadeDepth = 1000;
}  // namespace

Grammar::Grammar() {
  root_ = allocate_rule();  // rule id 0
}

Grammar::~Grammar() = default;
Grammar::Grammar(Grammar&&) noexcept = default;
Grammar& Grammar::operator=(Grammar&&) noexcept = default;

// ---------------------------------------------------------------------------
// Allocation

Node* Grammar::allocate_node(Symbol sym, std::uint64_t exp) {
  Node* node;
  if (!free_nodes_.empty()) {
    node = free_nodes_.back();
    free_nodes_.pop_back();
  } else {
    node_pool_.emplace_back();
    node = &node_pool_.back();
  }
  node->sym = sym;
  node->exp = exp;
  node->prev = node->next = nullptr;
  node->owner = nullptr;
  node->alive = true;
  node->stable_id = 0xffffffffu;
  return node;
}

void Grammar::release_node(Node* node) {
  PYTHIA_ASSERT(node->alive);
  node->alive = false;
  // Recycling is deferred to the end of the current append so that pointers
  // held in in-flight cascade frames never observe a reused node.
  pending_free_.push_back(node);
}

void Grammar::flush_pending_free() {
  free_nodes_.insert(free_nodes_.end(), pending_free_.begin(),
                     pending_free_.end());
  pending_free_.clear();
  // Dead rules release their id slot (tombstone -> nullptr) and park the
  // struct — including its users-vector capacity — for reuse. Deferred to
  // the end of the append for the same reason as nodes: dirty-list entries
  // from the current cascade may still point at them.
  for (Rule* rule : pending_free_rules_) {
    PYTHIA_ASSERT(!rule->alive);
    rules_[rule->id] = nullptr;
    rule->users.clear();
    free_rules_.push_back(rule);
  }
  pending_free_rules_.clear();
}

Rule* Grammar::allocate_rule() {
  Rule* rule;
  if (!free_rules_.empty()) {
    rule = free_rules_.back();
    free_rules_.pop_back();
    rule->head = rule->tail = nullptr;
    rule->length = 0;
    rule->alive = true;
    rule->occurrences = 0;
  } else {
    rule_pool_.emplace_back();
    rule = &rule_pool_.back();
  }
  // Recycled structs get a *fresh* id: id assignment (and with it rule
  // naming, serialization order, and stable node ids) is identical whether
  // or not a free struct was available.
  rule->id = static_cast<std::uint32_t>(rules_.size());
  // A recycled struct may carry the stamp of the rule that died in it; the
  // fresh id means this is a new rule and must enter the log on its own.
  rule->dirty_stamp = 0;
  rules_.push_back(rule);
  ++live_rule_count_;
  stamp_dirty(rule);
  return rule;
}

Rule* Grammar::create_rule_with_id(std::uint32_t id) {
  if (id >= rules_.size()) rules_.resize(id + 1, nullptr);
  PYTHIA_ASSERT_MSG(rules_[id] == nullptr, "rule id slot occupied");
  Rule* rule;
  if (!free_rules_.empty()) {
    rule = free_rules_.back();
    free_rules_.pop_back();
    rule->head = rule->tail = nullptr;
    rule->length = 0;
    rule->alive = true;
    rule->occurrences = 0;
  } else {
    rule_pool_.emplace_back();
    rule = &rule_pool_.back();
  }
  rule->id = id;
  rule->dirty_stamp = 0;
  rules_[id] = rule;
  ++live_rule_count_;
  return rule;
}

void Grammar::retire_rule(Rule* rule) {
  PYTHIA_ASSERT(rule->users.empty() && rule->head == nullptr);
  PYTHIA_ASSERT(rule->alive);
  rule->alive = false;
  rules_[rule->id] = nullptr;
  free_rules_.push_back(rule);
  --live_rule_count_;
}

void Grammar::stamp_dirty(Rule* rule) {
  if (!dirty_tracking_ || rule->dirty_stamp == dirty_epoch_) return;
  rule->dirty_stamp = dirty_epoch_;
  dirty_log_.push_back(rule->id);
}

std::uint64_t Grammar::drain_dirty_since(std::uint64_t epoch,
                                         std::vector<std::uint32_t>& out) {
  PYTHIA_ASSERT_MSG(dirty_tracking_, "dirty tracking not enabled");
  PYTHIA_ASSERT_MSG(epoch + 1 == dirty_epoch_,
                    "drain_dirty_since: epoch gap (missed a drain?)");
  out.insert(out.end(), dirty_log_.begin(), dirty_log_.end());
  dirty_log_.clear();
  return dirty_epoch_++;
}

void Grammar::register_user(Node* node) {
  if (!node->sym.is_rule()) return;
  Rule* rule = rules_[node->sym.rule_id()];
  rule->users.push_back(node);
}

void Grammar::deregister_user(Node* node) {
  if (!node->sym.is_rule()) return;
  Rule* rule = rules_[node->sym.rule_id()];
  auto it = std::find(rule->users.begin(), rule->users.end(), node);
  PYTHIA_ASSERT_MSG(it != rule->users.end(), "user bookkeeping out of sync");
  rule->users.erase(it);
  mark_rule_dirty(rule);
}

// ---------------------------------------------------------------------------
// Linked-list plumbing

void Grammar::link_after(Rule* rule, Node* position, Node* node) {
  node->owner = rule;
  if (position == nullptr) {  // insert at head
    node->prev = nullptr;
    node->next = rule->head;
    if (rule->head != nullptr) rule->head->prev = node;
    rule->head = node;
    if (rule->tail == nullptr) rule->tail = node;
  } else {
    node->prev = position;
    node->next = position->next;
    if (position->next != nullptr) position->next->prev = node;
    position->next = node;
    if (rule->tail == position) rule->tail = node;
  }
  ++rule->length;
  register_user(node);
  stamp_dirty(rule);
}

void Grammar::unlink(Node* node) {
  Rule* rule = node->owner;
  if (node->prev != nullptr) node->prev->next = node->next;
  if (node->next != nullptr) node->next->prev = node->prev;
  if (rule->head == node) rule->head = node->next;
  if (rule->tail == node) rule->tail = node->prev;
  --rule->length;
  deregister_user(node);
  node->prev = node->next = nullptr;
  node->owner = nullptr;
  stamp_dirty(rule);
}

// ---------------------------------------------------------------------------
// Digram index

void Grammar::index_pair(Node* left) {
  PYTHIA_ASSERT(left->next != nullptr);
  PYTHIA_ASSERT(left->sym != left->next->sym);
  digrams_.insert_or_assign(digram_key(left->sym, left->next->sym), left);
}

void Grammar::unindex_pair(Node* left) {
  if (left == nullptr || !left->alive || left->next == nullptr) return;
  digrams_.erase_if(digram_key(left->sym, left->next->sym),
                    [left](Node* canon) { return canon == left; });
}

Node* Grammar::find_pair(Symbol a, Symbol b) const {
  Node* const* found = digrams_.find(digram_key(a, b));
  return found != nullptr ? *found : nullptr;
}

// ---------------------------------------------------------------------------
// Reduction (paper §II-A, fig. 3)

void Grammar::append(TerminalId event) {
  PYTHIA_ASSERT_MSG(!finalized_, "append() after finalize()");
  ++appended_;
  ops_since_append_ = 0;
  append_symbol(root_, Symbol::terminal(event), 0);
  process_dirty_rules();
  flush_pending_free();
}

void Grammar::append_symbol(Rule* rule, Symbol sym, int depth) {
  PYTHIA_ASSERT_MSG(depth < kMaxAppendDepth, "append cascade too deep");
  Node* tail = rule->tail;

  // Case 1: same symbol as the current tail — bump the exponent.
  if (tail != nullptr && tail->sym == sym) {
    ++tail->exp;
    stamp_dirty(rule);
    return;
  }

  // Case 2: couple (tail, sym) not seen anywhere — plain append.
  Node* existing = tail != nullptr ? find_pair(tail->sym, sym) : nullptr;
  if (existing == nullptr) {
    Node* node = allocate_node(sym, 1);
    link_after(rule, tail, node);
    if (tail != nullptr) index_pair(tail);
    return;
  }

  // Case 3: the couple already exists in the grammar — factor it out.
  Node* left = existing;
  Node* right = left->next;
  PYTHIA_ASSERT(right != nullptr && right->sym == sym);
  const std::uint64_t m = std::min(left->exp, tail->exp);

  Rule* target;
  const bool reuse = left->owner != root_ && left->owner->length == 2 &&
                     left->owner->head == left && left->owner->tail == right &&
                     left->exp == m && right->exp == 1;
  // Consume m units of the tail first: removing the last node of the root
  // creates no new adjacency, so this cannot cascade and cannot invalidate
  // `left`/`right` (the existing site never overlaps the append point).
  tail->exp -= m;
  stamp_dirty(rule);
  if (tail->exp == 0) {
    unindex_pair(tail->prev);
    unlink(tail);
    release_node(tail);
  } else {
    note_exp_decrease(tail);
  }

  if (reuse) {
    target = left->owner;
  } else {
    target = allocate_rule();
    Node* a = allocate_node(left->sym, m);
    link_after(target, nullptr, a);
    Node* b = allocate_node(sym, 1);
    link_after(target, a, b);
    // The couple now lives canonically inside the new rule's body.
    digrams_.insert_or_assign(digram_key(left->sym, sym), a);
    raw_substitute(left, right, target, m);
  }

  append_symbol(rule, Symbol::rule(target->id), depth + 1);
}

void Grammar::raw_substitute(Node* left, Node* right, Rule* target,
                             std::uint64_t consumed_left) {
  PYTHIA_ASSERT_MSG(++ops_since_append_ < 100000,
                    "runaway cascade in grammar reduction");
  Rule* owner = left->owner;
  PYTHIA_ASSERT(left->next == right);
  PYTHIA_ASSERT(left->exp >= consumed_left && right->exp >= 1);

  // The (left, right) couple disappears from this site.
  unindex_pair(left);

  Node* marker = allocate_node(Symbol::rule(target->id), 1);
  link_after(owner, left, marker);

  left->exp -= consumed_left;
  right->exp -= 1;

  Node* before = left;
  if (left->exp == 0) {
    unindex_pair(left->prev);
    before = left->prev;
    unlink(left);
    release_node(left);
  } else {
    note_exp_decrease(left);
  }

  if (right->exp == 0) {
    unindex_pair(right);
    unlink(right);
    release_node(right);
  } else {
    note_exp_decrease(right);
  }

  // Re-validate the adjacencies around the marker.
  ensure_adjacency(before, 0);
  if (marker->alive) ensure_adjacency(marker, 0);
}

void Grammar::ensure_adjacency(Node* left, int depth) {
  PYTHIA_ASSERT_MSG(depth < kMaxCascadeDepth, "cascade too deep");
  while (left != nullptr && left->alive && left->next != nullptr) {
    Node* right = left->next;
    if (left->sym == right->sym) {
      // Invariant 3: merge adjacent equal symbols into the exponent.
      unindex_pair(right);
      left->exp += right->exp;
      unlink(right);
      release_node(right);
      continue;  // re-check against the new right neighbour
    }
    Node* existing = find_pair(left->sym, right->sym);
    if (existing == nullptr) {
      index_pair(left);
      return;
    }
    if (existing == left) return;  // this site is the canonical one
    resolve_duplicate(left, existing, depth + 1);
    return;
  }
}

// Two disjoint sites carry the same couple; factor a rule out of both
// (invariant 2). `site` is the freshly created adjacency, `canon` the
// indexed one.
void Grammar::resolve_duplicate(Node* site, Node* canon, int depth) {
  Node* site_r = site->next;
  Node* canon_r = canon->next;
  PYTHIA_ASSERT(site_r != nullptr && canon_r != nullptr);
  PYTHIA_ASSERT(site != canon);

  const std::uint64_t m = std::min(site->exp, canon->exp);
  const std::uint64_t key = digram_key(site->sym, site_r->sym);

  auto exact_body = [&](Node* l, Node* r) {
    Rule* o = l->owner;
    return o != root_ && o->length == 2 && o->head == l && o->tail == r &&
           l->exp == m && r->exp == 1;
  };

  if (exact_body(canon, canon_r)) {
    // The canonical site *is* a rule body: reuse it (paper fig. 3e).
    raw_substitute(site, site_r, canon->owner, m);
    return;
  }
  if (exact_body(site, site_r)) {
    digrams_.insert_or_assign(key, site);
    raw_substitute(canon, canon_r, site->owner, m);
    return;
  }

  Rule* target = allocate_rule();
  Node* a = allocate_node(site->sym, m);
  link_after(target, nullptr, a);
  Node* b = allocate_node(site_r->sym, 1);
  link_after(target, a, b);
  digrams_.insert_or_assign(key, a);

  raw_substitute(site, site_r, target, m);
  // Cascades from the first substitution may have restructured the other
  // site; only substitute if the couple is still intact there.
  if (canon->alive && canon_r->alive && canon->next == canon_r) {
    raw_substitute(canon, canon_r, target, m);
  }
  (void)depth;
}

// ---------------------------------------------------------------------------
// Rule utility (invariant 1)

void Grammar::note_exp_decrease(Node* node) {
  if (node->sym.is_rule()) mark_rule_dirty(rules_[node->sym.rule_id()]);
}

void Grammar::mark_rule_dirty(Rule* rule) {
  if (rule == root_ || !rule->alive) return;
  dirty_rules_.push_back(rule);
}

void Grammar::process_dirty_rules() {
  while (!dirty_rules_.empty()) {
    Rule* rule = dirty_rules_.back();
    dirty_rules_.pop_back();
    if (!rule->alive || rule == root_) continue;
    std::uint64_t uses = 0;
    for (const Node* user : rule->users) {
      uses += user->exp;
      if (uses >= 2) break;
    }
    if (uses >= 2) continue;
    if (rule->users.empty()) {
      destroy_rule(rule);
    } else {
      inline_rule(rule);
    }
  }
}

void Grammar::inline_rule(Rule* rule) {
  PYTHIA_ASSERT(rule->users.size() == 1);
  Node* user = rule->users.front();
  PYTHIA_ASSERT(user->exp == 1);
  Rule* owner = user->owner;
  PYTHIA_ASSERT_MSG(owner != rule, "self-referential rule");

  Node* before = user->prev;
  Node* after = user->next;
  unindex_pair(before);
  unindex_pair(user);

  Node* first = rule->head;
  Node* last = rule->tail;
  PYTHIA_ASSERT(first != nullptr && last != nullptr);
  for (Node* n = first; n != nullptr; n = n->next) n->owner = owner;

  // Splice the body in place of the user node. Interior digram index
  // entries keep pointing at the same (moved) nodes and stay valid.
  first->prev = before;
  last->next = after;
  if (before != nullptr) {
    before->next = first;
  } else {
    owner->head = first;
  }
  if (after != nullptr) {
    after->prev = last;
  } else {
    owner->tail = last;
  }
  owner->length += rule->length - 1;
  // The splice bypasses link_after/unlink: stamp the rewritten owner and
  // the dying rule explicitly.
  stamp_dirty(owner);
  stamp_dirty(rule);

  // Retire the rule. The user node is destroyed manually: it is already
  // spliced out of the list.
  rule->head = rule->tail = nullptr;
  rule->length = 0;
  rule->users.clear();
  rule->alive = false;
  --live_rule_count_;
  pending_free_rules_.push_back(rule);
  user->prev = user->next = nullptr;
  user->owner = nullptr;
  release_node(user);

  // Boundary adjacencies may merge or duplicate. Interior adjacencies of
  // the spliced body are untouched and their index entries stay valid.
  ensure_adjacency(before, 0);
  if (last->alive) ensure_adjacency(last, 0);
}

void Grammar::destroy_rule(Rule* rule) {
  PYTHIA_ASSERT(rule->users.empty());
  stamp_dirty(rule);
  Node* node = rule->head;
  while (node != nullptr) {
    Node* next = node->next;
    unindex_pair(node);
    // deregister_user marks referenced rules dirty — they may lose utility.
    deregister_user(node);
    node->prev = node->next = nullptr;
    node->owner = nullptr;
    release_node(node);
    node = next;
  }
  rule->head = rule->tail = nullptr;
  rule->length = 0;
  rule->alive = false;
  --live_rule_count_;
  pending_free_rules_.push_back(rule);
}

// ---------------------------------------------------------------------------
// Queries

std::vector<TerminalId> Grammar::unfold() const {
  std::vector<TerminalId> out;
  out.reserve(appended_);
  // Explicit stack of (node, remaining repetitions of node).
  struct Frame {
    const Node* node;
    std::uint64_t remaining;
  };
  std::vector<Frame> stack;
  if (root_->head != nullptr) stack.push_back({root_->head, root_->head->exp});
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.node == nullptr) {
      stack.pop_back();
      continue;
    }
    if (frame.remaining == 0) {
      frame.node = frame.node->next;
      frame.remaining = frame.node != nullptr ? frame.node->exp : 0;
      continue;
    }
    --frame.remaining;
    if (frame.node->sym.is_terminal()) {
      out.push_back(frame.node->sym.terminal_id());
    } else {
      const Rule* rule = rules_[frame.node->sym.rule_id()];
      PYTHIA_ASSERT(rule->alive && rule->head != nullptr);
      stack.push_back({rule->head, rule->head->exp});
    }
  }
  return out;
}

std::vector<const Rule*> Grammar::rules() const {
  std::vector<const Rule*> out;
  out.reserve(live_rule_count_);
  for (const Rule* rule : rules_) {
    if (rule != nullptr && rule->alive) out.push_back(rule);
  }
  return out;
}

const Rule* Grammar::rule_by_id(std::uint32_t id) const {
  if (id >= rules_.size() || rules_[id] == nullptr || !rules_[id]->alive) {
    return nullptr;
  }
  return rules_[id];
}

Rule* Grammar::rule_by_id(std::uint32_t id) {
  if (id >= rules_.size() || rules_[id] == nullptr || !rules_[id]->alive) {
    return nullptr;
  }
  return rules_[id];
}

std::uint64_t Grammar::count_occurrences(Rule* rule,
                                         std::vector<std::uint64_t>& memo,
                                         std::vector<int>& state) const {
  // Iterative walk up the rule-user graph (occ(root) == 1; every other
  // rule occurs as often as the sum over its usage sites). Grammar depth
  // comes from the input, so no recursion. Cycles are a bug here:
  // from_bodies() rejects cyclic files before they ever reach finalize().
  if (state[rule->id] == 2) return memo[rule->id];
  PYTHIA_ASSERT_MSG(state[rule->id] != 1, "cycle in rule-user graph");
  struct Frame {
    Rule* rule;
    std::size_t user_index;
    std::uint64_t total;
  };
  std::vector<Frame> stack;
  state[rule->id] = 1;
  stack.push_back({rule, 0, rule == root_ ? 1ull : 0ull});
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.rule == root_ ||
        frame.user_index == frame.rule->users.size()) {
      memo[frame.rule->id] = frame.total;
      state[frame.rule->id] = 2;
      stack.pop_back();
      continue;
    }
    Rule* owner = frame.rule->users[frame.user_index]->owner;
    if (state[owner->id] == 0) {
      state[owner->id] = 1;
      stack.push_back({owner, 0, owner == root_ ? 1ull : 0ull});
      continue;
    }
    PYTHIA_ASSERT_MSG(state[owner->id] == 2, "cycle in rule-user graph");
    frame.total +=
        frame.rule->users[frame.user_index]->exp * memo[owner->id];
    ++frame.user_index;
  }
  return memo[rule->id];
}

void Grammar::finalize() {
  PYTHIA_ASSERT_MSG(!finalized_, "finalize() called twice");
  finalized_ = true;
  finalize_impl();
}

void Grammar::refinalize() {
  finalized_ = true;
  finalize_impl();
  // Shadow-sync body surgery bypasses the digram bookkeeping; rebuild the
  // index wholesale so check_invariants()/remap_terminals() stay valid.
  // Content equals the incrementally maintained index: unique couple ->
  // left node.
  rebuild_digram_index();
}

void Grammar::finalize_impl() {
  occurrence_nodes_.clear();
  occurrence_spans_.clear();
  stable_nodes_.clear();

  std::vector<std::uint64_t> memo(rules_.size(), 0);
  std::vector<int> state(rules_.size(), 0);
  for (Rule* rule : rules_) {
    if (rule == nullptr || !rule->alive) continue;
    rule->occurrences = count_occurrences(rule, memo, state);
  }

  // Pass 1: assign stable ids.
  for (Rule* rule : rules_) {
    if (rule == nullptr || !rule->alive) continue;
    for (Node* node = rule->head; node != nullptr; node = node->next) {
      node->stable_id = static_cast<std::uint32_t>(stable_nodes_.size());
      stable_nodes_.push_back(node);
    }
  }

  // Pass 2: canonicalize user lists into body-scan (stable id) order.
  // During reduction the lists are maintained with swap-remove, so their
  // order depends on construction history; anchoring enumerates them, and
  // a grammar rebuilt from file (from_bodies registers users in body
  // order) must enumerate identically — the compiled prediction tables
  // bake that order in at save time.
  for (Rule* rule : rules_) {
    if (rule == nullptr || !rule->alive) continue;
    rule->users.clear();
  }
  for (Node* node : stable_nodes_) {
    if (node->sym.is_rule()) {
      rule_by_id(node->sym.rule_id())->users.push_back(node);
    }
  }

  build_occurrence_index();
}

void Grammar::build_occurrence_index() {
  occurrence_nodes_.clear();
  occurrence_spans_.clear();

  TerminalId max_terminal = 0;
  std::size_t terminal_nodes = 0;
  for (const Node* node : stable_nodes_) {
    if (node->sym.is_terminal()) {
      max_terminal = std::max(max_terminal, node->sym.terminal_id());
      ++terminal_nodes;
    }
  }
  if (terminal_nodes == 0) return;

  // Counting sort into one flat array. Fill order follows stable node
  // order, so each terminal's occurrence list is ordered exactly as the
  // per-terminal vectors of the old hash index were.
  occurrence_spans_.assign(static_cast<std::size_t>(max_terminal) + 1,
                           {0, 0});
  for (const Node* node : stable_nodes_) {
    if (node->sym.is_terminal()) {
      ++occurrence_spans_[node->sym.terminal_id()].second;
    }
  }
  std::uint32_t offset = 0;
  for (auto& [start, count] : occurrence_spans_) {
    start = offset;
    offset += count;
    count = 0;  // reused as the fill cursor below
  }
  occurrence_nodes_.resize(terminal_nodes);
  for (Node* node : stable_nodes_) {
    if (!node->sym.is_terminal()) continue;
    auto& [start, filled] = occurrence_spans_[node->sym.terminal_id()];
    occurrence_nodes_[start + filled++] = node;
  }
}

void Grammar::remap_terminals(const std::vector<TerminalId>& old_to_new) {
  PYTHIA_ASSERT_MSG(finalized_, "remap_terminals() before finalize()");
  for (Node* node : stable_nodes_) {
    if (!node->sym.is_terminal()) continue;
    const TerminalId old = node->sym.terminal_id();
    PYTHIA_ASSERT(old < old_to_new.size());
    node->sym = Symbol::terminal(old_to_new[old]);
  }
  // The relabelling permutes occurrence spans and rewrites every digram
  // key; rebuild both indexes (validate() cross-checks the digram index
  // even on finalized grammars).
  build_occurrence_index();
  rebuild_digram_index();
}

void Grammar::rebuild_digram_index() {
  digrams_.clear();
  for (Rule* rule : rules_) {
    if (rule == nullptr || !rule->alive) continue;
    for (Node* node = rule->head; node != nullptr; node = node->next) {
      if (node->prev != nullptr) {
        digrams_.insert_or_assign(digram_key(node->prev->sym, node->sym),
                                  node->prev);
      }
    }
  }
}

NodeSpan Grammar::occurrences_of(TerminalId event) const {
  PYTHIA_ASSERT_MSG(finalized_, "occurrences_of() before finalize()");
  if (event >= occurrence_spans_.size()) return NodeSpan{};
  const auto& [start, count] = occurrence_spans_[event];
  return NodeSpan{occurrence_nodes_.data() + start, count};
}

Grammar::PoolStats Grammar::pool_stats() const {
  PoolStats stats;
  stats.nodes_allocated = node_pool_.size();
  stats.nodes_free = free_nodes_.size() + pending_free_.size();
  stats.rules_allocated = rule_pool_.size();
  stats.rules_live = live_rule_count_;
  stats.rules_free = free_rules_.size() + pending_free_rules_.size();
  stats.rule_ids = rules_.size();
  stats.digram_count = digrams_.size();
  stats.digram_capacity = digrams_.capacity();
  return stats;
}

Node* Grammar::node_by_stable_id(std::uint32_t id) const {
  PYTHIA_ASSERT(finalized_ && id < stable_nodes_.size());
  return stable_nodes_[id];
}

// ---------------------------------------------------------------------------
// Validation

void Grammar::check_invariants() const {
  std::unordered_map<std::uint64_t, const Node*> seen_pairs;
  std::unordered_map<const Rule*, std::vector<const Node*>> actual_users;
  std::size_t live_count = 0;

  for (const Rule* rule : rules_) {
    if (rule == nullptr || !rule->alive) continue;
    ++live_count;
    PYTHIA_ASSERT_MSG(rule->head != nullptr || rule == root_,
                      "live rule with empty body");
    PYTHIA_ASSERT_MSG(rule == root_ || rule->length >= 2,
                      "non-root rule with short body");
    std::size_t length = 0;
    const Node* prev = nullptr;
    for (const Node* node = rule->head; node != nullptr; node = node->next) {
      ++length;
      PYTHIA_ASSERT(node->alive);
      PYTHIA_ASSERT(node->owner == rule);
      PYTHIA_ASSERT(node->prev == prev);
      PYTHIA_ASSERT_MSG(node->exp >= 1, "zero exponent");
      if (node->sym.is_rule()) {
        const Rule* referenced = rules_[node->sym.rule_id()];
        PYTHIA_ASSERT_MSG(referenced->alive, "reference to dead rule");
        PYTHIA_ASSERT_MSG(referenced != root_, "reference to root");
        actual_users[referenced].push_back(node);
      }
      if (prev != nullptr) {
        PYTHIA_ASSERT_MSG(prev->sym != node->sym,
                          "adjacent equal symbols (invariant 3)");
        const std::uint64_t key = digram_key(prev->sym, node->sym);
        PYTHIA_ASSERT_MSG(seen_pairs.emplace(key, prev).second,
                          "duplicate couple (invariant 2)");
        Node* const* canon = digrams_.find(key);
        PYTHIA_ASSERT_MSG(canon != nullptr && *canon == prev,
                          "couple missing from digram index");
      }
      prev = node;
    }
    PYTHIA_ASSERT(rule->tail == prev);
    PYTHIA_ASSERT(rule->length == length);
  }
  PYTHIA_ASSERT(live_count == live_rule_count_);
  PYTHIA_ASSERT_MSG(digrams_.size() == seen_pairs.size(),
                    "stale digram index entries");

  for (const Rule* rule : rules_) {
    if (rule == nullptr || !rule->alive || rule == root_) continue;
    auto& actual = actual_users[rule];
    PYTHIA_ASSERT_MSG(actual.size() == rule->users.size(),
                      "user list out of sync");
    std::uint64_t uses = 0;
    for (const Node* user : rule->users) {
      PYTHIA_ASSERT(std::find(actual.begin(), actual.end(), user) !=
                    actual.end());
      uses += user->exp;
    }
    PYTHIA_ASSERT_MSG(uses >= 2, "under-used rule (invariant 1)");
  }

  // Master length check: the grammar must represent exactly the appended
  // sequence length. Explicit stack — rule chains can nest deeper than
  // the C stack tolerates (tests/core/deep_grammar_test.cpp).
  std::vector<std::uint64_t> lengths(rules_.size(), 0);
  std::vector<int> state(rules_.size(), 0);  // 0 unvisited, 1 visiting, 2 done
  struct LengthFrame {
    const Rule* rule;
    const Node* node;
    std::uint64_t total;
  };
  std::vector<LengthFrame> length_stack;
  state[root_->id] = 1;
  length_stack.push_back({root_, root_->head, 0});
  while (!length_stack.empty()) {
    LengthFrame& frame = length_stack.back();
    if (frame.node == nullptr) {
      lengths[frame.rule->id] = frame.total;
      state[frame.rule->id] = 2;
      length_stack.pop_back();
      continue;
    }
    const Node* node = frame.node;
    std::uint64_t unit = 1;
    if (node->sym.is_rule()) {
      const std::uint32_t ref = node->sym.rule_id();
      PYTHIA_ASSERT_MSG(state[ref] != 1, "cyclic rule reference");
      if (state[ref] == 0) {
        state[ref] = 1;
        length_stack.push_back({rules_[ref], rules_[ref]->head, 0});
        continue;  // resume this frame once the referenced rule is done
      }
      unit = lengths[ref];
    }
    frame.total += unit * node->exp;
    frame.node = node->next;
  }
  PYTHIA_ASSERT_MSG(lengths[root_->id] == appended_,
                    "grammar length drifted from appended sequence");
}

// ---------------------------------------------------------------------------
// Pretty-printing (paper notation)

std::string Grammar::to_text(const EventRegistry* registry) const {
  auto symbol_name = [&](Symbol sym) -> std::string {
    if (sym.is_rule()) {
      if (sym.rule_id() == 0) return "R";
      // A, B, C, ... then Rule<N>
      const std::uint32_t index = sym.rule_id() - 1;
      if (index < 26) return std::string(1, static_cast<char>('A' + index));
      return "Rule" + std::to_string(sym.rule_id());
    }
    if (registry != nullptr) return registry->describe(sym.terminal_id());
    // a, b, c ... then t<N>
    const TerminalId id = sym.terminal_id();
    if (id < 26) return std::string(1, static_cast<char>('a' + id));
    return "t" + std::to_string(id);
  };

  std::string out;
  for (const Rule* rule : rules_) {
    if (rule == nullptr || !rule->alive) continue;
    out += symbol_name(Symbol::rule(rule->id)) + " -> ";
    bool first = true;
    for (const Node* node = rule->head; node != nullptr; node = node->next) {
      if (!first) out += " ";
      first = false;
      out += symbol_name(node->sym);
      if (node->exp > 1) out += "^" + std::to_string(node->exp);
    }
    out += "\n";
  }
  return out;
}

std::string Grammar::to_dot(const EventRegistry* registry) const {
  auto label = [&](Symbol sym) -> std::string {
    if (sym.is_rule()) {
      return sym.rule_id() == 0 ? "R" : "A" + std::to_string(sym.rule_id());
    }
    if (registry != nullptr) return registry->describe(sym.terminal_id());
    return "t" + std::to_string(sym.terminal_id());
  };
  auto escape = [](const std::string& text) {
    std::string out;
    for (char c : text) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  };

  std::string out = "digraph grammar {\n  node [shape=box];\n";
  for (const Rule* rule : rules_) {
    if (rule == nullptr || !rule->alive) continue;
    std::string body;
    for (const Node* node = rule->head; node != nullptr; node = node->next) {
      if (!body.empty()) body += " ";
      body += label(node->sym);
      if (node->exp > 1) body += "^" + std::to_string(node->exp);
    }
    out += "  r" + std::to_string(rule->id) + " [label=\"" +
           escape(label(Symbol::rule(rule->id)) + " -> " + body) + "\"];\n";
    for (const Node* node = rule->head; node != nullptr; node = node->next) {
      if (node->sym.is_rule()) {
        out += "  r" + std::to_string(rule->id) + " -> r" +
               std::to_string(node->sym.rule_id()) + ";\n";
      }
    }
  }
  out += "}\n";
  return out;
}

// ---------------------------------------------------------------------------
// Direct construction (deserialization / tests)

Grammar Grammar::from_bodies(
    const std::vector<std::vector<BodyEntry>>& bodies) {
  // This is the deserialization path: the input may come from an
  // untrusted/corrupted file, so violations throw instead of aborting.
  auto reject = [](const char* what) {
    throw std::runtime_error(std::string("pythia: invalid grammar: ") +
                             what);
  };
  if (bodies.empty()) reject("no root rule");
  Grammar grammar;
  // Rule 0 already exists (root); create the rest.
  for (std::size_t i = 1; i < bodies.size(); ++i) grammar.allocate_rule();

  for (std::size_t i = 0; i < bodies.size(); ++i) {
    Rule* rule = grammar.rules_[i];
    if (i != 0 && bodies[i].size() < 2) reject("short non-root body");
    Node* tail = nullptr;
    for (const BodyEntry& entry : bodies[i]) {
      if (entry.exp < 1) reject("zero exponent");
      if (entry.sym.is_rule()) {
        if (entry.sym.rule_id() >= bodies.size()) {
          reject("reference to unknown rule");
        }
        if (entry.sym.rule_id() == 0) reject("reference to root");
      }
      if (tail != nullptr && tail->sym == entry.sym) {
        reject("adjacent equal symbols (invariant 3)");
      }
      Node* node = grammar.allocate_node(entry.sym, entry.exp);
      grammar.link_after(rule, tail, node);
      if (tail != nullptr) {
        const std::uint64_t key = digram_key(tail->sym, node->sym);
        if (grammar.digrams_.contains(key)) {
          reject("duplicate couple (invariant 2)");
        }
        grammar.digrams_.insert_or_assign(key, tail);
      }
      tail = node;
    }
  }

  // Invariant 1: every non-root rule used at least twice (summing
  // exponents over its usage sites).
  for (std::size_t i = 1; i < bodies.size(); ++i) {
    std::uint64_t uses = 0;
    for (const Node* user : grammar.rules_[i]->users) uses += user->exp;
    if (uses < 2) reject("under-used rule (invariant 1)");
  }

  // Compute the expanded length of *every* rule, rejecting rule-reference
  // cycles anywhere in the grammar. Checking only the rules reachable from
  // the root is not enough: a mutually-referential pair can satisfy the
  // use-count invariant while being unreachable, and would then hang or
  // abort occurrence counting in finalize(). The walk is iterative — a
  // corrupt file must not choose our recursion depth — and overflow in the
  // length arithmetic is corruption, not UB.
  std::vector<std::uint64_t> lengths(grammar.rules_.size(), 0);
  std::vector<int> state(grammar.rules_.size(), 0);  // 0 new, 1 open, 2 done
  struct Frame {
    const Rule* rule;
    const Node* node;
    std::uint64_t total;
  };
  std::vector<Frame> stack;
  for (std::size_t start = 0; start < grammar.rules_.size(); ++start) {
    if (state[start] == 2) continue;
    state[start] = 1;
    stack.push_back({grammar.rules_[start], grammar.rules_[start]->head, 0});
    while (!stack.empty()) {
      Frame& frame = stack.back();
      if (frame.node == nullptr) {
        lengths[frame.rule->id] = frame.total;
        state[frame.rule->id] = 2;
        stack.pop_back();
        continue;
      }
      const Node* node = frame.node;
      std::uint64_t unit = 1;
      if (node->sym.is_rule()) {
        const std::uint32_t ref = node->sym.rule_id();
        if (state[ref] == 1) reject("cyclic rule reference");
        if (state[ref] == 0) {
          state[ref] = 1;
          stack.push_back({grammar.rules_[ref], grammar.rules_[ref]->head, 0});
          continue;  // resume this frame once the referenced rule is done
        }
        unit = lengths[ref];
      }
      std::uint64_t contribution = 0;
      if (__builtin_mul_overflow(unit, node->exp, &contribution) ||
          __builtin_add_overflow(frame.total, contribution, &frame.total)) {
        reject("sequence length overflow");
      }
      frame.node = node->next;
    }
  }
  grammar.appended_ = lengths[0];
  return grammar;
}

}  // namespace pythia
