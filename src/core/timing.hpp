// Context-sensitive duration statistics (paper §II-C, fig. 6).
//
// At the end of the reference execution, PYTHIA-RECORD replays the event
// sequence against the final grammar, tracking the canonical progress
// sequence; for each event it accumulates the elapsed time from the
// previous event under every suffix of the progress sequence. Deeper
// suffixes carry more context: the duration of "b after a when a c comes
// next" (progress sequence BAb) is kept separately from the plain "b
// after a" (Ab).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/progress.hpp"

namespace pythia {

/// One entry of the recorder's raw timestamp log: the event id plus its
/// timestamp split into two 32-bit halves. The split keeps the struct at
/// 12 bytes with natural alignment — a packed single-vector log instead of
/// two parallel vectors (event ids and times land on the same cache line).
struct TimedEvent {
  TerminalId event = 0;
  std::uint32_t time_lo = 0;
  std::uint32_t time_hi = 0;

  static TimedEvent make(TerminalId event, std::uint64_t time_ns) {
    return {event, static_cast<std::uint32_t>(time_ns),
            static_cast<std::uint32_t>(time_ns >> 32)};
  }
  std::uint64_t time_ns() const {
    return (static_cast<std::uint64_t>(time_hi) << 32) | time_lo;
  }
};
static_assert(sizeof(TimedEvent) == 12);

class TimingModel {
 public:
  /// Maximum suffix depth recorded per event (paper examples use 2–3
  /// levels; deeper context rarely pays for its memory).
  static constexpr std::size_t kMaxContextDepth = 4;

  struct DurationStat {
    double sum_ns = 0.0;
    std::uint64_t count = 0;

    double mean() const {
      return count > 0 ? sum_ns / static_cast<double>(count) : 0.0;
    }
  };

  /// Accumulates `elapsed_ns` (time from the previous event to this one)
  /// for every suffix of `path` up to kMaxContextDepth.
  void add_sample(const ProgressPath& path, double elapsed_ns);

  /// Expected time from the previous event to the position `path`, using
  /// the deepest suffix with recorded data; falls back to the global mean.
  std::optional<double> expect_ns(const ProgressPath& path) const;

  bool empty() const { return by_context_.empty(); }
  std::size_t context_count() const { return by_context_.size(); }
  double global_mean_ns() const { return global_.mean(); }

  /// Builds the model by replaying a recorded event sequence with its
  /// timestamps against a finalized grammar. `events` and `times_ns` must
  /// be the exact reference sequence (times_ns[i] is the timestamp of
  /// events[i]).
  static TimingModel replay(const Grammar& grammar,
                            const std::vector<TerminalId>& events,
                            const std::vector<std::uint64_t>& times_ns);

  /// Same, over the recorder's packed log.
  static TimingModel replay(const Grammar& grammar,
                            const std::vector<TimedEvent>& log);

  // Serialization access (trace_io).
  const std::unordered_map<std::uint64_t, DurationStat>& contexts() const {
    return by_context_;
  }
  void load_context(std::uint64_t key, DurationStat stat) {
    by_context_[key] = stat;
    global_.sum_ns += stat.sum_ns;
    global_.count += stat.count;
  }

  // Emission access (incremental finalize). Unlike load_context this
  // *merges* on key collision — exactly what add_sample does when two
  // distinct chains hash to the same suffix key — and leaves the global
  // stat alone: the incremental path carries the global fold separately
  // (it is a sum over trace order, not over contexts).
  void accumulate_context(std::uint64_t key, DurationStat stat) {
    DurationStat& slot = by_context_[key];
    slot.sum_ns += stat.sum_ns;
    slot.count += stat.count;
  }
  void set_global(DurationStat stat) { global_ = stat; }
  DurationStat global_stat() const { return global_; }

 private:
  std::unordered_map<std::uint64_t, DurationStat> by_context_;
  DurationStat global_;
};

}  // namespace pythia
