// Incremental finalize: O(rules-changed) snapshot publishes (ISSUE 10).
//
// OnlineOracle's original rebuild_snapshot replayed the *entire* event
// log into a fresh grammar and re-replayed the timing model on every
// publish — O(run length) work for what Sequitur maintains online for
// free. The IncrementalFinalizer instead keeps a *shadow* copy of the
// live grammar, finalized and servable between publishes, and patches it
// forward at each publish using the live grammar's dirty-rule epoch log:
//
//   1. drain the dirty rule ids accumulated since the last publish, then
//      refine away "ABA" ids whose bodies ended the epoch unchanged
//      (carve-then-reinline churn restamps the whole rule spine on loopy
//      streams; ids are never reused, so same-id body comparison against
//      the shadow is sound);
//   2. close the set upward through the live user graph (a rule whose
//      subtree contains a changed rule is "unclean" — every trace
//      position under it may have a different progress chain);
//   3. walk the shadow-old and live root bodies in lockstep to find P,
//      the expanded length of the maximal matched *clean* prefix: every
//      position < P provably keeps its exact progress chain (same shadow
//      node pointers, same repetition indices);
//   4. subtract the timing contributions of positions [max(P,1), N_old)
//      from the chain-keyed stats map by replaying the log range on the
//      *old* shadow (exact: elapsed values are integer-valued doubles,
//      so subtraction cancels bit-exactly below 2^53) — or, when the
//      clean prefix collapses so far that patching would walk more
//      positions than one full pass, rebuild the chain map in a single
//      sweep of the new shadow instead (same sums, summation order is
//      irrelevant for exact integers), bounding timing cost at one
//      log sweep per publish;
//   5. rewrite the dirty rules' shadow bodies in place (longest matched
//      (symbol, exponent) prefix preserved — required for root, whose
//      matched prefix nodes appear in surviving chains), then
//      refinalize the shadow (stable ids, occurrence counts/index,
//      canonical user lists, digram index — all O(grammar));
//   6. re-add positions [max(P,1), N_new) on the new shadow and emit a
//      fresh TimingModel keyed by stable-id suffix keys.
//
// The contract is *bit-identity*: after publish(), grammar() and
// timing() are indistinguishable — serialization bytes, digests,
// predictor behaviour, compiled PYCGRM01 blobs — from a from-scratch
// replay of the same log prefix. The differential tests and the online
// SIGKILL matrix enforce it (tests/core/incremental_finalize_test.cpp).
//
// Exactness precondition: per-publish timing patches cancel bit-exactly
// while every partial sum of elapsed-ns values stays an integer below
// 2^53 (~104 days of nanoseconds) — the same regime in which summing
// doubles is associative at all. An internal assert (sum == 0 when a
// chain's count drains to 0) is the canary.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/grammar.hpp"
#include "core/timing.hpp"

namespace pythia {

class IncrementalFinalizer {
 public:
  struct PublishStats {
    std::uint64_t publishes = 0;
    std::uint64_t bootstraps = 0;  ///< full shadow syncs (first publish)
    std::uint64_t last_dirty_rules = 0;    ///< drained ids, last publish
    std::uint64_t last_changed_rules = 0;  ///< ...that actually changed
    std::uint64_t last_closure_rules = 0;  ///< unclean closure size
    std::uint64_t last_clean_prefix = 0;   ///< P (events kept verbatim)
    std::uint64_t last_subtracted = 0;     ///< timing positions subtracted
    std::uint64_t last_added = 0;          ///< timing positions re-added
    /// Publishes that rebuilt the chain map in one pass instead of
    /// patching: chosen whenever 2(N - P) walks would exceed a single
    /// N-walk pass, which bounds the timing cost at one log sweep even
    /// when the clean prefix collapses.
    std::uint64_t timing_rebuilds = 0;
  };

  IncrementalFinalizer() = default;
  IncrementalFinalizer(const IncrementalFinalizer&) = delete;
  IncrementalFinalizer& operator=(const IncrementalFinalizer&) = delete;

  /// Publishes a finalized snapshot of `live` at its full current length.
  /// `log` must be the complete event log behind `live` (log.size() ==
  /// live.sequence_length()), append-only across publishes. `timestamped`
  /// is the caller's monotone "any nonzero stamp in the log yet" flag —
  /// while false the emitted timing model stays empty, exactly like the
  /// full-rebuild path. Dirty tracking must be enabled on `live` before
  /// any event follows the previous publish (enable it once, up front).
  void publish(Grammar& live, const std::vector<TimedEvent>& log,
               bool timestamped);

  /// The finalized shadow grammar / emitted timing model. Valid after the
  /// first publish; mutated in place by the next one (consumers that must
  /// survive a publish — predictors, compiled blobs — are rebuilt by the
  /// caller right after each publish).
  const Grammar& grammar() const { return shadow_; }
  const TimingModel& timing() const { return timing_; }

  const PublishStats& stats() const { return stats_; }

  /// Rule ids whose finalized artifacts may differ from the previous
  /// publish (the unclean closure): the delta-compile hint set, valid
  /// against grammar() until the next publish.
  const std::vector<std::uint32_t>& last_closure() const {
    return closure_ids_;
  }

 private:
  struct ChainKey {
    const Node* nodes[TimingModel::kMaxContextDepth] = {};
    std::uint32_t len = 0;
    friend bool operator==(const ChainKey& a, const ChainKey& b) {
      if (a.len != b.len) return false;
      for (std::uint32_t i = 0; i < a.len; ++i) {
        if (a.nodes[i] != b.nodes[i]) return false;
      }
      return true;
    }
  };
  struct ChainKeyHash {
    std::size_t operator()(const ChainKey& key) const;
  };

  void compute_closure(const Grammar& live);
  std::uint64_t clean_prefix(const Grammar& live) const;
  void sync(Grammar& live);
  void rewrite_body(Rule* shadow_rule, const Rule* live_rule);
  void free_body(Rule* shadow_rule);
  void subtract_range(const std::vector<TimedEvent>& log, std::uint64_t from,
                      std::uint64_t to);
  void add_range(const std::vector<TimedEvent>& log, std::uint64_t from,
                 std::uint64_t to);
  void emit_timing();

  Grammar shadow_;
  TimingModel timing_;  ///< emitted per publish from chains_ + global_
  PublishStats stats_;
  bool bootstrapped_ = false;
  bool timing_active_ = false;
  std::uint64_t epoch_ = 0;

  std::vector<std::uint32_t> dirty_ids_;
  std::vector<std::uint32_t> closure_ids_;
  std::vector<std::uint8_t> in_closure_;  ///< by live rule id
  std::vector<std::uint64_t> live_lengths_;    ///< expanded length by id
  std::vector<std::uint64_t> shadow_lengths_;  ///< ... of the old shadow

  /// Chain-keyed duration stats: one entry per distinct ≤4-level prefix
  /// of a progress path, keyed by shadow node pointers (identity-stable
  /// for untouched rules across publishes). Sums are exact integer-valued
  /// doubles, so per-position subtraction cancels bit-exactly.
  std::unordered_map<ChainKey, TimingModel::DurationStat, ChainKeyHash>
      chains_;
  TimingModel::DurationStat global_;
};

}  // namespace pythia
