#include "core/incremental_finalize.hpp"

#include <algorithm>

#include "core/progress.hpp"
#include "support/assert.hpp"
#include "support/hash.hpp"

namespace pythia {

namespace {

/// Expanded length of every rule, indexed by rule id (0 for dead slots).
/// Explicit stack — rule chains can nest deeper than the C stack
/// tolerates (tests/core/deep_grammar_test.cpp).
void compute_rule_lengths(const Grammar& grammar,
                          std::vector<std::uint64_t>& out) {
  const std::size_t slots = grammar.id_slot_count();
  out.assign(slots, 0);
  std::vector<int> state(slots, 0);  // 0 new, 1 open, 2 done
  struct Frame {
    const Rule* rule;
    const Node* node;
    std::uint64_t total;
  };
  std::vector<Frame> stack;
  for (std::uint32_t start = 0; start < slots; ++start) {
    const Rule* rule = grammar.rule_by_id(start);
    if (rule == nullptr || state[start] == 2) continue;
    state[start] = 1;
    stack.push_back({rule, rule->head, 0});
    while (!stack.empty()) {
      Frame& frame = stack.back();
      if (frame.node == nullptr) {
        out[frame.rule->id] = frame.total;
        state[frame.rule->id] = 2;
        stack.pop_back();
        continue;
      }
      const Node* node = frame.node;
      std::uint64_t unit = 1;
      if (node->sym.is_rule()) {
        const std::uint32_t ref = node->sym.rule_id();
        PYTHIA_ASSERT_MSG(state[ref] != 1, "cyclic rule reference");
        if (state[ref] == 0) {
          state[ref] = 1;
          const Rule* inner = grammar.rule_by_id(ref);
          PYTHIA_ASSERT(inner != nullptr);
          stack.push_back({inner, inner->head, 0});
          continue;  // resume this frame once the referenced rule is done
        }
        unit = out[ref];
      }
      frame.total += unit * node->exp;
      frame.node = node->next;
    }
  }
}

/// Builds the canonical progress path of trace position `pos` by direct
/// descent from the root (rep = offset / unit at each level) — the path
/// advance() would hold after `pos` steps from begin(), without the
/// O(pos) simulation. `lengths` must be compute_rule_lengths() output
/// for `grammar`.
void seek(const Grammar& grammar, std::uint64_t pos,
          const std::vector<std::uint64_t>& lengths,
          std::vector<PathElement>& scratch, ProgressPath& out) {
  scratch.clear();
  const Rule* rule = grammar.root();
  std::uint64_t off = pos;
  while (true) {
    const Node* node = rule->head;
    std::uint64_t unit;
    for (;;) {
      PYTHIA_ASSERT_MSG(node != nullptr, "seek past the sequence end");
      unit = node->sym.is_terminal() ? 1 : lengths[node->sym.rule_id()];
      const std::uint64_t span = unit * node->exp;
      if (off < span) break;
      off -= span;
      node = node->next;
    }
    scratch.push_back({node, off / unit});
    off %= unit;
    if (node->sym.is_terminal()) {
      PYTHIA_ASSERT(off == 0);
      break;
    }
    rule = grammar.rule_by_id(node->sym.rule_id());
    PYTHIA_ASSERT(rule != nullptr);
  }
  // scratch is root-first; ProgressPath stores terminal-first.
  std::reverse(scratch.begin(), scratch.end());
  out.assign(scratch.data(), scratch.size());
}

/// True when the two rule bodies are the same (symbol, exponent)
/// sequence. Used to detect "ABA" churn — see publish() step 1b.
bool body_equal(const Rule* a, const Rule* b) {
  const Node* x = a->head;
  const Node* y = b->head;
  while (x != nullptr && y != nullptr) {
    if (x->sym != y->sym || x->exp != y->exp) return false;
    x = x->next;
    y = y->next;
  }
  return x == nullptr && y == nullptr;
}

}  // namespace

std::size_t IncrementalFinalizer::ChainKeyHash::operator()(
    const ChainKey& key) const {
  std::uint64_t h = 0x7f4a7c159e3779b9ULL;
  for (std::uint32_t i = 0; i < key.len; ++i) {
    h = support::hash_combine(h,
                              reinterpret_cast<std::uintptr_t>(key.nodes[i]));
  }
  return static_cast<std::size_t>(h);
}

void IncrementalFinalizer::publish(Grammar& live,
                                   const std::vector<TimedEvent>& log,
                                   bool timestamped) {
  PYTHIA_ASSERT_MSG(live.dirty_tracking_enabled(),
                    "publish() requires dirty tracking on the live grammar");
  PYTHIA_ASSERT(!live.finalized());
  PYTHIA_ASSERT_MSG(!(timing_active_ && !timestamped),
                    "timestamped flag must be monotone");
  const std::uint64_t n_new = live.sequence_length();
  const std::uint64_t n_old = shadow_.sequence_length();
  PYTHIA_ASSERT_MSG(log.size() == n_new, "log must cover the live grammar");

  // 1. Drain the epoch log (always — the epoch chain must stay unbroken).
  dirty_ids_.clear();
  epoch_ = live.drain_dirty_since(epoch_, dirty_ids_);
  stats_.last_dirty_rules = dirty_ids_.size();

  if (!bootstrapped_) {
    // First publish (or first after crash recovery restored the live
    // grammar from a checkpoint): every live rule counts as dirty, so
    // the generic path below performs one full sync + full timing
    // bootstrap and is O(changed) from then on.
    dirty_ids_.clear();
    for (std::uint32_t id = 0; id < live.id_slot_count(); ++id) {
      if (live.rule_by_id(id) != nullptr) dirty_ids_.push_back(id);
    }
    bootstrapped_ = true;
    ++stats_.bootstraps;
  }

  // 1b. ABA refinement. Sequitur's carve-then-reinline churn restamps
  // rules whose bodies end the epoch exactly where they started — on
  // loopy streams that is the whole rule spine, every epoch. Ids are
  // never reused, so a drained id alive on both sides with an identical
  // (symbol, exponent) body provably needs no sync, and must not enter
  // the closure: there it would drag its user spine in and collapse the
  // clean prefix to nothing, degrading the timing patch to O(log). Ids
  // born and dead within the epoch were never mirrored and drop too.
  {
    std::size_t kept = 0;
    for (const std::uint32_t id : dirty_ids_) {
      const Rule* live_rule = live.rule_by_id(id);
      const Rule* shadow_rule =
          id < shadow_.rules_.size() ? shadow_.rules_[id] : nullptr;
      if (live_rule == nullptr && shadow_rule == nullptr) continue;
      if (live_rule != nullptr && shadow_rule != nullptr &&
          body_equal(shadow_rule, live_rule)) {
        continue;
      }
      dirty_ids_[kept++] = id;
    }
    dirty_ids_.resize(kept);
  }
  stats_.last_changed_rules = dirty_ids_.size();

  // 2. Unclean closure + 3. matched-clean root prefix.
  compute_closure(live);
  compute_rule_lengths(live, live_lengths_);
  const std::uint64_t p = clean_prefix(live);
  stats_.last_clean_prefix = p;

  // 4. Subtract the stale positions' timing on the *old* shadow — unless
  // rebuilding the chain map from scratch is cheaper. Patching costs
  // ~2(N - P) chain walks (subtract the stale range on the old shadow,
  // re-add it on the new one); when the clean prefix collapses — loopy
  // streams regroup shared rules between publishes, which genuinely
  // changes most positions' context chains — a single add pass over the
  // new shadow does less work and lands on bit-identical sums (elapsed
  // values are integer-valued doubles, so summation order is
  // irrelevant below 2^53).
  const std::uint64_t patch_from = std::max<std::uint64_t>(p, 1);
  const bool rebuild_chains =
      timing_active_ &&
      (n_old - std::min(patch_from, n_old)) + (n_new - patch_from) >
          n_new - 1;
  if (timing_active_ && !rebuild_chains) {
    subtract_range(log, patch_from, n_old);
  } else {
    stats_.last_subtracted = 0;
  }

  // 5. Sync + refinalize.
  sync(live);
  shadow_.refinalize();

  // 6. Re-add on the new shadow; fold the global stat forward.
  if (timestamped && !timing_active_) {
    // Timing just became active (first timestamped publish, or stamps
    // appeared mid-run): bootstrap the chain map with one full pass.
    timing_active_ = true;
    chains_.clear();
    global_ = {};
    add_range(log, 1, n_new);
    for (std::uint64_t i = 1; i < n_new; ++i) {
      global_.sum_ns +=
          static_cast<double>(log[i].time_ns() - log[i - 1].time_ns());
      ++global_.count;
    }
  } else if (timing_active_) {
    if (rebuild_chains) {
      chains_.clear();
      add_range(log, 1, n_new);
      ++stats_.timing_rebuilds;
    } else {
      add_range(log, patch_from, n_new);
    }
    for (std::uint64_t i = std::max<std::uint64_t>(n_old, 1); i < n_new;
         ++i) {
      global_.sum_ns +=
          static_cast<double>(log[i].time_ns() - log[i - 1].time_ns());
      ++global_.count;
    }
  } else {
    stats_.last_added = 0;
  }

  emit_timing();
  ++stats_.publishes;
}

void IncrementalFinalizer::compute_closure(const Grammar& live) {
  in_closure_.assign(live.id_slot_count(), 0);
  closure_ids_.clear();
  for (std::uint32_t id : dirty_ids_) {
    if (id < in_closure_.size() && !in_closure_[id]) {
      in_closure_[id] = 1;
      closure_ids_.push_back(id);
    }
  }
  // Upward fixpoint through the live user graph: any rule whose subtree
  // contains a changed rule is unclean. Dead rules have no users; the
  // rules that used to reference them changed their own bodies and are
  // already stamped.
  for (std::size_t i = 0; i < closure_ids_.size(); ++i) {
    const Rule* rule = live.rule_by_id(closure_ids_[i]);
    if (rule == nullptr) continue;
    for (const Node* user : rule->users) {
      const std::uint32_t owner = user->owner->id;
      if (!in_closure_[owner]) {
        in_closure_[owner] = 1;
        closure_ids_.push_back(owner);
      }
    }
  }
  stats_.last_closure_rules = closure_ids_.size();
}

std::uint64_t IncrementalFinalizer::clean_prefix(const Grammar& live) const {
  // Lockstep walk of the old shadow root body and the live root body.
  // A node pair matches when symbol and exponent agree and, for rule
  // references, the rule is outside the unclean closure — then the whole
  // subtree (and every progress chain inside it) is provably unchanged.
  const Node* s = shadow_.root()->head;
  const Node* l = live.root()->head;
  std::uint64_t p = 0;
  while (s != nullptr && l != nullptr) {
    if (s->sym != l->sym || s->exp != l->exp) break;
    if (l->sym.is_rule() && in_closure_[l->sym.rule_id()]) break;
    const std::uint64_t unit =
        l->sym.is_terminal() ? 1 : live_lengths_[l->sym.rule_id()];
    p += unit * l->exp;
    s = s->next;
    l = l->next;
  }
  // Boundary extension — the steady-state case that makes the whole
  // patch O(changed): appending events to a loopy stream usually just
  // bumps the exponent of the last big root node ([I^340] -> [I^341]),
  // and a strict (sym, exp) match would discard its entire span. Chain
  // keys carry no repetition index, so every position inside the first
  // min(old, new) repetitions keeps its exact chain — as long as the
  // symbol agrees, the subtree is outside the closure, and the shadow
  // node survives the sync in place (rewrite_body updates its exponent
  // rather than recloning it, preserving pointer identity and stable id).
  if (s != nullptr && l != nullptr && s->sym == l->sym &&
      s->exp != l->exp &&
      (l->sym.is_terminal() || !in_closure_[l->sym.rule_id()])) {
    const std::uint64_t unit =
        l->sym.is_terminal() ? 1 : live_lengths_[l->sym.rule_id()];
    p += unit * std::min(s->exp, l->exp);
  }
  return p;
}

void IncrementalFinalizer::free_body(Rule* shadow_rule) {
  Node* node = shadow_rule->head;
  while (node != nullptr) {
    Node* next = node->next;
    if (node->sym.is_rule()) {
      // Membership-only user bookkeeping (order is refinalize()'s job).
      // Grammar::deregister_user would feed the live-append utility
      // machinery, which never runs on a shadow — so do it by hand.
      Rule* referenced = shadow_.rules_[node->sym.rule_id()];
      auto it =
          std::find(referenced->users.begin(), referenced->users.end(), node);
      PYTHIA_ASSERT_MSG(it != referenced->users.end(),
                        "shadow user bookkeeping out of sync");
      *it = referenced->users.back();
      referenced->users.pop_back();
    }
    node->prev = node->next = nullptr;
    node->owner = nullptr;
    shadow_.release_node(node);
    node = next;
  }
  shadow_rule->head = shadow_rule->tail = nullptr;
  shadow_rule->length = 0;
}

void IncrementalFinalizer::rewrite_body(Rule* shadow_rule,
                                        const Rule* live_rule) {
  // Keep the longest (symbol, exponent)-equal prefix. For the root this
  // is load-bearing: surviving timing chains (positions < P) end in a
  // matched root-body node, whose pointer identity must be preserved.
  // For other dirty rules it only saves allocation churn — every chain
  // through them was fully drained by the subtract pass.
  Node* s = shadow_rule->head;
  const Node* l = live_rule->head;
  Node* kept_tail = nullptr;
  while (s != nullptr && l != nullptr && s->sym == l->sym &&
         s->exp == l->exp) {
    kept_tail = s;
    s = s->next;
    l = l->next;
  }
  // Same symbol, different exponent: update in place instead of
  // recloning. For the root this is load-bearing — clean_prefix()'s
  // boundary extension counts positions inside this node, and their
  // surviving timing chains key on this exact node pointer. (Same-symbol
  // means same rule reference, so user bookkeeping needs no touch-up.)
  if (s != nullptr && l != nullptr && s->sym == l->sym) {
    s->exp = l->exp;
    kept_tail = s;
    s = s->next;
    l = l->next;
  }

  // Drop the stale shadow suffix...
  while (s != nullptr) {
    Node* next = s->next;
    if (s->sym.is_rule()) {
      Rule* referenced = shadow_.rules_[s->sym.rule_id()];
      auto it =
          std::find(referenced->users.begin(), referenced->users.end(), s);
      PYTHIA_ASSERT_MSG(it != referenced->users.end(),
                        "shadow user bookkeeping out of sync");
      *it = referenced->users.back();
      referenced->users.pop_back();
    }
    s->prev = s->next = nullptr;
    s->owner = nullptr;
    shadow_.release_node(s);
    s = next;
  }
  if (kept_tail == nullptr) shadow_rule->head = nullptr;

  // ...and clone the live suffix in its place.
  Node* tail = kept_tail;
  for (; l != nullptr; l = l->next) {
    Node* node = shadow_.allocate_node(l->sym, l->exp);
    node->owner = shadow_rule;
    node->prev = tail;
    if (tail != nullptr) {
      tail->next = node;
    } else {
      shadow_rule->head = node;
    }
    if (node->sym.is_rule()) {
      shadow_.rules_[node->sym.rule_id()]->users.push_back(node);
    }
    tail = node;
  }
  if (tail != nullptr) tail->next = nullptr;
  shadow_rule->tail = tail;
  shadow_rule->length = live_rule->length;
}

void IncrementalFinalizer::sync(Grammar& live) {
  // Pass A: materialize empty shadow rules for ids born since the last
  // publish, so body clones in pass B can register membership on them.
  for (std::uint32_t id : dirty_ids_) {
    const Rule* live_rule = live.rule_by_id(id);
    if (live_rule == nullptr) continue;
    if (id >= shadow_.rules_.size() || shadow_.rules_[id] == nullptr) {
      shadow_.create_rule_with_id(id);
    }
  }
  // Pass B: rewrite every dirty-and-alive rule's body.
  for (std::uint32_t id : dirty_ids_) {
    const Rule* live_rule = live.rule_by_id(id);
    if (live_rule == nullptr) continue;
    rewrite_body(shadow_.rules_[id], live_rule);
  }
  // Pass C: rules dead in live. Free all their bodies first (two dead
  // rules may reference each other), then retire the empty structs.
  for (std::uint32_t id : dirty_ids_) {
    if (live.rule_by_id(id) != nullptr) continue;
    if (id >= shadow_.rules_.size() || shadow_.rules_[id] == nullptr) {
      continue;  // born and died within the epoch — never mirrored
    }
    free_body(shadow_.rules_[id]);
  }
  for (std::uint32_t id : dirty_ids_) {
    if (live.rule_by_id(id) != nullptr) continue;
    if (id >= shadow_.rules_.size() || shadow_.rules_[id] == nullptr) {
      continue;
    }
    Rule* shadow_rule = shadow_.rules_[id];
    PYTHIA_ASSERT_MSG(shadow_rule->users.empty(),
                      "dead rule still referenced after sync");
    shadow_.retire_rule(shadow_rule);
  }
  shadow_.flush_pending_free();
  shadow_.appended_ = live.sequence_length();
}

void IncrementalFinalizer::subtract_range(const std::vector<TimedEvent>& log,
                                          std::uint64_t from,
                                          std::uint64_t to) {
  stats_.last_subtracted = to > from ? to - from : 0;
  if (from >= to) return;
  compute_rule_lengths(shadow_, shadow_lengths_);
  std::vector<PathElement> scratch;
  ProgressPath path;
  seek(shadow_, from, shadow_lengths_, scratch, path);
  for (std::uint64_t i = from; i < to; ++i) {
    PYTHIA_ASSERT(!path.empty());
    PYTHIA_ASSERT_MSG(path.terminal() == log[i].event,
                      "event log diverges from shadow grammar");
    const double elapsed =
        static_cast<double>(log[i].time_ns() - log[i - 1].time_ns());
    const std::size_t depth =
        std::min(path.depth(), TimingModel::kMaxContextDepth);
    for (std::size_t levels = 1; levels <= depth; ++levels) {
      ChainKey key;
      key.len = static_cast<std::uint32_t>(levels);
      for (std::size_t j = 0; j < levels; ++j) {
        key.nodes[j] = path.element(j).node;
      }
      auto it = chains_.find(key);
      PYTHIA_ASSERT_MSG(it != chains_.end(),
                        "subtracting an unknown timing chain");
      it->second.sum_ns -= elapsed;
      PYTHIA_ASSERT(it->second.count > 0);
      --it->second.count;
      if (it->second.count == 0) {
        // Exact cancellation (integer-valued doubles): a fully drained
        // chain must read 0. This is also what makes erasure safe before
        // the sync frees/reuses the nodes the key points at.
        PYTHIA_ASSERT_MSG(it->second.sum_ns == 0.0,
                          "timing patch lost exactness");
        chains_.erase(it);
      }
    }
    if (i + 1 < to) {
      const bool more = path.advance(shadow_);
      PYTHIA_ASSERT(more);
    }
  }
}

void IncrementalFinalizer::add_range(const std::vector<TimedEvent>& log,
                                     std::uint64_t from, std::uint64_t to) {
  stats_.last_added = to > from ? to - from : 0;
  if (from >= to) return;
  std::vector<PathElement> scratch;
  ProgressPath path;
  // The synced shadow is structurally identical to the live grammar, so
  // the live length memo indexes it correctly.
  seek(shadow_, from, live_lengths_, scratch, path);
  for (std::uint64_t i = from; i < to; ++i) {
    PYTHIA_ASSERT(!path.empty());
    PYTHIA_ASSERT_MSG(path.terminal() == log[i].event,
                      "event log diverges from synced shadow");
    const double elapsed =
        static_cast<double>(log[i].time_ns() - log[i - 1].time_ns());
    const std::size_t depth =
        std::min(path.depth(), TimingModel::kMaxContextDepth);
    for (std::size_t levels = 1; levels <= depth; ++levels) {
      ChainKey key;
      key.len = static_cast<std::uint32_t>(levels);
      for (std::size_t j = 0; j < levels; ++j) {
        key.nodes[j] = path.element(j).node;
      }
      TimingModel::DurationStat& stat = chains_[key];
      stat.sum_ns += elapsed;
      ++stat.count;
    }
    if (i + 1 < to) {
      const bool more = path.advance(shadow_);
      PYTHIA_ASSERT(more);
    }
  }
}

void IncrementalFinalizer::emit_timing() {
  timing_ = TimingModel();
  if (!timing_active_) return;
  // Chains are keyed by node pointers internally; the emitted model keys
  // by stable-id suffix hashes, merging on collision exactly as
  // add_sample would (sums are exact integers, so merge order cannot
  // change the result).
  for (const auto& [key, stat] : chains_) {
    std::uint64_t h = 0x2545f4914f6cdd1dULL;
    for (std::uint32_t i = 0; i < key.len; ++i) {
      h = support::hash_combine(h, key.nodes[i]->stable_id);
    }
    timing_.accumulate_context(h, stat);
  }
  timing_.set_global(global_);
}

}  // namespace pythia
