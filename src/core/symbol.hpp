// Grammar symbols: terminals (events) and non-terminals (rules).
//
// A symbol is a tagged 32-bit id. Terminals carry the event id assigned by
// the EventRegistry; non-terminals carry the rule id assigned by the
// Grammar. The encoding keeps digram keys to a single 64-bit word.
#pragma once

#include <cstdint>

namespace pythia {

/// Identifier of a terminal symbol (an interned event).
using TerminalId = std::uint32_t;

class Symbol {
 public:
  constexpr Symbol() : raw_(0) {}

  static constexpr Symbol terminal(TerminalId id) {
    return Symbol((id << 1u) | 0u);
  }
  static constexpr Symbol rule(std::uint32_t rule_id) {
    return Symbol((rule_id << 1u) | 1u);
  }

  constexpr bool is_terminal() const { return (raw_ & 1u) == 0u; }
  constexpr bool is_rule() const { return (raw_ & 1u) == 1u; }

  constexpr TerminalId terminal_id() const { return raw_ >> 1u; }
  constexpr std::uint32_t rule_id() const { return raw_ >> 1u; }

  /// Raw encoding; unique across terminals and rules (used in digram keys).
  constexpr std::uint32_t raw() const { return raw_; }
  static constexpr Symbol from_raw(std::uint32_t raw) { return Symbol(raw); }

  friend constexpr bool operator==(Symbol a, Symbol b) {
    return a.raw_ == b.raw_;
  }
  friend constexpr bool operator!=(Symbol a, Symbol b) {
    return a.raw_ != b.raw_;
  }

 private:
  explicit constexpr Symbol(std::uint32_t raw) : raw_(raw) {}
  std::uint32_t raw_;
};

/// Key of an adjacent symbol pair in the digram index.
constexpr std::uint64_t digram_key(Symbol a, Symbol b) {
  return (static_cast<std::uint64_t>(a.raw()) << 32u) |
         static_cast<std::uint64_t>(b.raw());
}

}  // namespace pythia
