#include "core/progress.hpp"

#include "support/assert.hpp"
#include "support/hash.hpp"

namespace pythia {

namespace {
using PathChain = support::SmallVec<PathElement, ProgressPath::kInlineDepth>;
}  // namespace

ProgressPath ProgressPath::begin(const Grammar& grammar) {
  const Rule* rule = grammar.root();
  if (rule->head == nullptr) return ProgressPath{};
  // Descend along rule heads to the first terminal, building the path
  // root-last.
  PathChain downward;
  const Node* node = rule->head;
  while (true) {
    downward.push_back({node, 0});
    if (node->sym.is_terminal()) break;
    const Rule* inner = grammar.rule_by_id(node->sym.rule_id());
    PYTHIA_ASSERT(inner != nullptr && inner->head != nullptr);
    node = inner->head;
  }
  ProgressPath path;
  for (std::size_t i = downward.size(); i > 0; --i) {
    path.elements_.push_back(downward[i - 1]);
  }
  return path;
}

bool ProgressPath::advance(const Grammar& grammar) {
  PYTHIA_ASSERT(!elements_.empty());
  // Find the shallowest level that has a successor: either one more
  // repetition of the same node, or the next node in the body. Levels
  // below it are dropped (fig. 5b/5c).
  std::size_t level = 0;
  for (; level < elements_.size(); ++level) {
    PathElement& element = elements_[level];
    if (element.rep + 1 < element.node->exp) {
      ++element.rep;
      break;
    }
    if (element.node->next != nullptr) {
      element = {element.node->next, 0};
      break;
    }
  }
  if (level == elements_.size()) {
    // Past the end of the root body: the reference trace is exhausted.
    elements_.clear();
    return false;
  }
  elements_.erase_prefix(level);

  // Descend to the first terminal of the new front element (fig. 5d).
  while (elements_.front().node->sym.is_rule()) {
    const Rule* rule =
        grammar.rule_by_id(elements_.front().node->sym.rule_id());
    PYTHIA_ASSERT(rule != nullptr && rule->head != nullptr);
    elements_.push_front({rule->head, 0});
  }
  return true;
}

namespace {

/// First terminal of the subtree rooted at `node` (descends rule heads).
TerminalId first_terminal_below(const Grammar& grammar, const Node* node) {
  while (node->sym.is_rule()) {
    const Rule* rule = grammar.rule_by_id(node->sym.rule_id());
    PYTHIA_ASSERT(rule != nullptr && rule->head != nullptr);
    node = rule->head;
  }
  return node->sym.terminal_id();
}

}  // namespace

bool ProgressPath::peek_next(const Grammar& grammar, TerminalId& out) const {
  PYTHIA_ASSERT(!elements_.empty());
  // Mirror of advance(): the shallowest level with a successor decides the
  // next terminal; one more repetition of a subtree re-enters its first
  // terminal, a next sibling contributes the first terminal of its own
  // subtree.
  for (std::size_t level = 0; level < elements_.size(); ++level) {
    const PathElement& element = elements_[level];
    if (element.rep + 1 < element.node->exp) {
      out = first_terminal_below(grammar, element.node);
      return true;
    }
    if (element.node->next != nullptr) {
      out = first_terminal_below(grammar, element.node->next);
      return true;
    }
  }
  return false;
}

std::uint64_t ProgressPath::hash() const {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const PathElement& element : elements_) {
    h = support::hash_combine(
        h, reinterpret_cast<std::uintptr_t>(element.node));
    h = support::hash_combine(h, element.rep);
  }
  return h;
}

std::uint64_t ProgressPath::suffix_key(std::size_t levels) const {
  PYTHIA_ASSERT(levels >= 1 && levels <= elements_.size());
  std::uint64_t h = 0x2545f4914f6cdd1dULL;
  for (std::size_t i = 0; i < levels; ++i) {
    h = support::hash_combine(h, elements_[i].node->stable_id);
  }
  return h;
}

namespace {

// Extends `chain` (terminal-first, currently ending inside `owner`)
// upwards through every usage site until the root is reached. The walk
// is an explicit-stack DFS: rule nesting equals grammar depth, and an
// adversarial trace can nest tens of thousands of levels deep — call
// recursion would overflow the thread stack long before the SmallVec
// chain notices (tests/core/deep_grammar_test.cpp).
void extend_upward(const Grammar& grammar, const Rule* owner,
                   PathChain& chain, std::size_t limit,
                   std::vector<ProgressPath>& out) {
  if (out.size() >= limit) return;
  if (owner == grammar.root()) {
    out.emplace_back();
    out.back().assign(chain.data(), chain.size());
    return;
  }
  // Each frame owns one chain element (pushed by the parent before the
  // frame was entered); user_index iterates the owner's usage sites in
  // the same order the recursion did, so anchoring output is unchanged.
  // SmallVec keeps the common shallow case allocation-free — re-anchor
  // is a steady-state hot path (tests/core/alloc_steady_state_test.cpp)
  // — and only deep grammars spill to the heap.
  struct UpFrame {
    const Rule* owner;
    std::size_t user_index;
  };
  support::SmallVec<UpFrame, ProgressPath::kInlineDepth> frames;
  frames.push_back({owner, 0});
  while (!frames.empty()) {
    if (out.size() >= limit) return;
    UpFrame& frame = frames.back();
    if (frame.user_index < frame.owner->users.size()) {
      const Node* user = frame.owner->users[frame.user_index];
      ++frame.user_index;
      chain.push_back({user, 0});
      if (user->owner == grammar.root()) {
        out.emplace_back();
        out.back().assign(chain.data(), chain.size());
        chain.pop_back();
      } else {
        frames.push_back({user->owner, 0});
      }
    } else {
      frames.pop_back();
      if (!frames.empty()) chain.pop_back();
    }
  }
}

}  // namespace

void ProgressPath::enumerate_occurrences(const Grammar& grammar,
                                         TerminalId event, std::size_t limit,
                                         std::vector<ProgressPath>& out) {
  PYTHIA_ASSERT_MSG(grammar.finalized(),
                    "enumerate_occurrences requires finalize()");
  PathChain chain;
  for (const Node* node : grammar.occurrences_of(event)) {
    chain.clear();
    chain.push_back({node, 0});
    extend_upward(grammar, node->owner, chain, limit, out);
    if (node->exp > 1) {
      // End-of-run phase: the next event differs from the mid-run one.
      chain.clear();
      chain.push_back({node, node->exp - 1});
      extend_upward(grammar, node->owner, chain, limit, out);
    }
    if (out.size() >= limit) return;
  }
}

}  // namespace pythia
