#include "core/compiled_predictor.hpp"

#include <algorithm>
#include <cstring>

#include "support/assert.hpp"
#include "support/hash.hpp"

namespace pythia {

// --- CompiledPath -----------------------------------------------------------

bool CompiledPath::advance(const CompiledView& view) {
  PYTHIA_ASSERT(!elements_.empty());
  std::size_t level = 0;
  for (; level < elements_.size(); ++level) {
    CompiledPathElement& element = elements_[level];
    const CompiledNode& node = view.node(element.node);
    if (element.rep + 1 < node.exp) {
      ++element.rep;
      break;
    }
    if (node.next != kCompiledInvalid) {
      element = {node.next, 0};
      break;
    }
  }
  if (level == elements_.size()) {
    elements_.clear();
    return false;
  }
  elements_.erase_prefix(level);
  while (true) {
    const Symbol sym =
        Symbol::from_raw(view.node(elements_.front().node).sym_raw);
    if (sym.is_terminal()) break;
    elements_.push_front({view.rule(sym.rule_id()).head, 0});
  }
  return true;
}

std::uint64_t CompiledPath::hash() const {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const CompiledPathElement& element : elements_) {
    h = support::hash_combine(h, element.node);
    h = support::hash_combine(h, element.rep);
  }
  return h;
}

std::uint64_t CompiledPath::suffix_key(std::size_t levels) const {
  PYTHIA_ASSERT(levels >= 1 && levels <= elements_.size());
  std::uint64_t h = 0x2545f4914f6cdd1dULL;
  for (std::size_t i = 0; i < levels; ++i) {
    h = support::hash_combine(h, elements_[i].node);
  }
  return h;
}

namespace {

using PathChain =
    support::SmallVec<CompiledPathElement, CompiledPath::kInlineDepth>;

// Mirror of progress.cpp's extend_upward: extends `chain` (terminal-first,
// currently ending inside rule `owner`) upwards through every usage site
// in canonical user order until the root (rule 0) is reached.
void extend_upward(const CompiledView& view, std::uint32_t owner,
                   PathChain& chain, std::size_t limit,
                   std::vector<CompiledPath>& out) {
  if (out.size() >= limit) return;
  if (owner == 0) {
    out.emplace_back();
    out.back().elements_.assign(chain.data(), chain.size());
    return;
  }
  const CompiledRule& rule = view.rule(owner);
  const std::uint32_t* users = view.users() + rule.users_start;
  for (std::uint32_t u = 0; u < rule.users_count; ++u) {
    if (out.size() >= limit) return;
    const std::uint32_t user = users[u];
    chain.push_back({user, 0});
    extend_upward(view, view.node(user).owner_rule, chain, limit, out);
    chain.pop_back();
  }
}

}  // namespace

void CompiledPath::enumerate_occurrences(const CompiledView& view,
                                         TerminalId event, std::size_t limit,
                                         std::vector<CompiledPath>& out) {
  const CompiledOccSpan& span = view.occ_span(event);
  PathChain chain;
  for (std::uint32_t i = 0; i < span.count; ++i) {
    const std::uint32_t id = view.occ_nodes()[span.start + i];
    const CompiledNode& node = view.node(id);
    chain.clear();
    chain.push_back({id, 0});
    extend_upward(view, node.owner_rule, chain, limit, out);
    if (node.exp > 1) {
      chain.clear();
      chain.push_back({id, node.exp - 1});
      extend_upward(view, node.owner_rule, chain, limit, out);
    }
    if (out.size() >= limit) return;
  }
}

// --- CompiledPredictor ------------------------------------------------------

CompiledPredictor::CompiledPredictor(const CompiledView& view, Options options)
    : view_(view),
      options_(options),
      jitter_rng_(options.breaker.jitter_seed ^ 0x9e3779b97f4a7c15ULL) {
  PYTHIA_ASSERT_MSG(view.valid(), "CompiledPredictor requires a parsed view");
  anchor_table_usable_ =
      options_.max_candidates == view_.header().max_candidates &&
      options_.max_anchor_paths == view_.header().max_anchor_paths;
}

std::uint32_t CompiledPredictor::jittered_spacing(std::uint32_t spacing) {
  const double jitter = options_.breaker.backoff_jitter;
  if (jitter <= 0.0 || spacing <= 1) return spacing;
  const double clamped = jitter < 1.0 ? jitter : 1.0;
  const auto span = static_cast<std::uint32_t>(clamped *
                                               static_cast<double>(spacing));
  if (span == 0) return spacing;
  const auto cut = static_cast<std::uint32_t>(jitter_rng_.below(span + 1));
  return std::max<std::uint32_t>(1, spacing - cut);
}

void CompiledPredictor::dedupe_and_cap(std::vector<CompiledPath>& paths) {
  seen_hashes_.clear();
  std::size_t kept = 0;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const std::uint64_t hash = paths[i].hash();
    bool duplicate = false;
    for (const std::uint64_t seen : seen_hashes_) {
      if (seen == hash) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    seen_hashes_.push_back(hash);
    if (kept != i) paths[kept] = std::move(paths[i]);
    ++kept;
  }
  paths.resize(kept);

  if (paths.size() > options_.max_candidates) {
    rank_scratch_.clear();
    for (std::size_t i = 0; i < paths.size(); ++i) {
      rank_scratch_.push_back(
          {paths[i].weight(view_), static_cast<std::uint32_t>(i)});
    }
    std::sort(rank_scratch_.begin(), rank_scratch_.end(),
              [](const RankEntry& a, const RankEntry& b) {
                return a.weight != b.weight ? a.weight > b.weight
                                            : a.index < b.index;
              });
    sorted_scratch_.clear();
    for (std::size_t i = 0; i < options_.max_candidates; ++i) {
      sorted_scratch_.push_back(std::move(paths[rank_scratch_[i].index]));
    }
    paths.swap(sorted_scratch_);
  }
}

void CompiledPredictor::anchor(TerminalId event) {
  ++stats_.anchors;
  candidates_.clear();
  scratch_paths_.clear();
  CompiledPath::enumerate_occurrences(view_, event,
                                      options_.max_anchor_paths,
                                      scratch_paths_);
  dedupe_and_cap(scratch_paths_);
  candidates_.swap(scratch_paths_);
  anchored_event_ = event;
}

void CompiledPredictor::record_outcome(bool advanced) {
  const std::size_t cap = options_.breaker.window;
  if (cap == 0) return;
  if (window_.size() != cap) window_.assign(cap, 0);
  if (window_count_ < cap) {
    ++window_count_;
  } else if (window_[window_next_] != 0) {
    --window_advanced_;
  }
  window_[window_next_] = advanced ? 1 : 0;
  if (advanced) ++window_advanced_;
  window_next_ = (window_next_ + 1) % cap;
}

void CompiledPredictor::enter_degraded() {
  health_ = Health::kDegraded;
  miss_streak_ = 0;
  advance_streak_ = 0;
  backoff_ = std::max<std::uint32_t>(1, options_.breaker.backoff_initial);
  probe_countdown_ = jittered_spacing(backoff_);
  candidates_.clear();
  anchored_event_ = kCompiledInvalid;
}

void CompiledPredictor::observe(TerminalId event) {
  ++stats_.observed;
  const Options::Breaker& breaker = options_.breaker;

  if (breaker.enabled && health_ == Health::kDegraded) {
    if (probe_countdown_ > 1) {
      --probe_countdown_;
      ++stats_.anchors_suppressed;
      if (view_.occ_span(event).count == 0) {
        ++stats_.unknown;
      } else {
        ++stats_.reanchored;
      }
      record_outcome(false);
      return;
    }
    anchor(event);
    record_outcome(false);
    if (candidates_.empty()) {
      ++stats_.unknown;
      backoff_ = std::min(backoff_ * 2, std::max<std::uint32_t>(
                                            1, breaker.backoff_max));
      probe_countdown_ = jittered_spacing(backoff_);
    } else {
      ++stats_.reanchored;
      health_ = Health::kRecovering;
      advance_streak_ = 0;
    }
    return;
  }

  if (!candidates_.empty()) {
    scratch_paths_.clear();
    for (const CompiledPath& path : candidates_) {
      // Peek the successor from the tables first; only matches pay for
      // the in-place advance (misses never copy the path at all).
      TerminalId next_event;
      if (resolve_terminal(path, 1, next_event) && next_event == event) {
        scratch_paths_.push_back(path);
        const bool more = scratch_paths_.back().advance(view_);
        PYTHIA_ASSERT(more);
      }
    }
    if (!scratch_paths_.empty()) {
      ++stats_.advanced;
      dedupe_and_cap(scratch_paths_);
      candidates_.swap(scratch_paths_);
      anchored_event_ = kCompiledInvalid;
      record_outcome(true);
      if (breaker.enabled) {
        miss_streak_ = 0;
        if (health_ == Health::kRecovering &&
            ++advance_streak_ >= breaker.recover_streak) {
          health_ = Health::kHealthy;
        }
      }
      return;
    }
  }
  anchor(event);
  if (candidates_.empty()) {
    ++stats_.unknown;
  } else {
    ++stats_.reanchored;
  }
  record_outcome(false);
  if (!breaker.enabled) return;
  advance_streak_ = 0;
  if (health_ == Health::kRecovering) {
    enter_degraded();
    return;
  }
  ++miss_streak_;
  const bool streak_tripped = breaker.miss_streak_limit > 0 &&
                              miss_streak_ >= breaker.miss_streak_limit;
  const bool confidence_tripped = window_count_ >= breaker.min_samples &&
                                  confidence() < breaker.degrade_below;
  if (streak_tripped || confidence_tripped) enter_degraded();
}

bool CompiledPredictor::resolve_terminal(const CompiledPath& path,
                                         std::size_t k,
                                         TerminalId& out) const {
  PYTHIA_ASSERT(k >= 1 && k <= kCompiledMaxK);
  // Successors of a position, in order: the remaining repetitions of the
  // terminal's own run, then per level upwards (a) one unfold of each
  // following sibling (the tail table) and (b) the remaining repetitions
  // of the parent element's subtree (the rule head-terminal table).
  const CompiledNode& front = view_.node(path.element(0).node);
  const std::uint64_t rem0 = front.exp - 1 - path.element(0).rep;
  if (k <= rem0) {
    out = Symbol::from_raw(front.sym_raw).terminal_id();
    return true;
  }
  k -= rem0;
  const std::size_t depth = path.depth();
  for (std::size_t level = 0; level < depth; ++level) {
    const CompiledNodeTail& tail = view_.tail(path.element(level).node);
    if (k <= tail.len) {
      out = tail.terms[k - 1];
      return true;
    }
    // k > tail.len with k <= kCompiledMaxK implies len < kCompiledMaxK,
    // i.e. the body truly ends within the table: step past it.
    k -= tail.len;
    if (level + 1 == depth) return false;  // past the end of the root body
    const CompiledPathElement& parent = path.element(level + 1);
    const CompiledNode& pnode = view_.node(parent.node);
    const CompiledRule& sub =
        view_.rule(Symbol::from_raw(pnode.sym_raw).rule_id());
    std::uint64_t rem = pnode.exp - 1 - parent.rep;
    // Each remaining repetition contributes exp_len terminals; when
    // k > head_len, head_len == exp_len < kCompiledMaxK, so k shrinks by
    // at least 1 per iteration (bounded by kCompiledMaxK, not by rem).
    while (rem > 0 && k > sub.head_len) {
      k -= sub.exp_len;
      --rem;
    }
    if (rem > 0) {
      out = sub.head_terms[k - 1];
      return true;
    }
  }
  return false;
}

double CompiledPredictor::accumulate_votes(std::size_t distance) const {
  vote_scratch_.clear();
  double total = 0.0;
  const bool tabled = distance <= kCompiledMaxK;
  for (const CompiledPath& candidate : candidates_) {
    const double weight = static_cast<double>(candidate.weight(view_));
    TerminalId event;
    if (tabled) {
      if (!resolve_terminal(candidate, distance, event)) continue;
    } else {
      future_scratch_ = candidate;
      bool alive = true;
      for (std::size_t step = 0; step < distance; ++step) {
        if (!future_scratch_.advance(view_)) {
          alive = false;
          break;
        }
      }
      if (!alive) continue;
      event = future_scratch_.terminal(view_);
    }
    bool merged = false;
    for (Prediction& vote : vote_scratch_) {
      if (vote.event == event) {
        vote.probability += weight;
        merged = true;
        break;
      }
    }
    if (!merged) vote_scratch_.push_back({event, weight});
    total += weight;
  }
  if (total > 0.0) {
    for (Prediction& vote : vote_scratch_) vote.probability /= total;
  }
  return total;
}

std::vector<Prediction> CompiledPredictor::predict_distribution(
    std::size_t distance) const {
  PYTHIA_ASSERT(distance >= 1);
  std::vector<Prediction> out;
  if (predictions_suppressed() || candidates_.empty()) return out;
  if (accumulate_votes(distance) <= 0.0) return out;
  out.assign(vote_scratch_.begin(), vote_scratch_.end());
  std::stable_sort(out.begin(), out.end(),
                   [](const Prediction& a, const Prediction& b) {
                     return a.probability > b.probability;
                   });
  return out;
}

std::optional<Prediction> CompiledPredictor::predict(
    std::size_t distance) const {
  PYTHIA_ASSERT(distance >= 1);
  if (predictions_suppressed() || candidates_.empty()) return std::nullopt;
  if (anchor_table_usable_ && anchored_event_ != kCompiledInvalid &&
      distance <= kCompiledMaxK) {
    // Fresh-anchor state: the answer was precomputed at compile time.
    const CompiledAnchorPred& pred =
        view_.anchor_pred(anchored_event_, distance);
    if (pred.event == kCompiledInvalid) return std::nullopt;
    return Prediction{pred.event, pred.probability};
  }
  if (accumulate_votes(distance) <= 0.0) return std::nullopt;
  const Prediction* best = &vote_scratch_.front();
  for (const Prediction& vote : vote_scratch_) {
    if (vote.probability > best->probability) best = &vote;
  }
  return *best;
}

std::vector<TerminalId> CompiledPredictor::predict_sequence(
    std::size_t count) const {
  std::vector<TerminalId> out(count);
  out.resize(predict_sequence_into(out.data(), count));
  return out;
}

void CompiledPredictor::emit_symbol(std::uint32_t sym_raw, TerminalId* out,
                                    std::size_t& filled,
                                    std::size_t count) const {
  if (filled >= count) return;
  const Symbol sym = Symbol::from_raw(sym_raw);
  if (sym.is_terminal()) {
    out[filled++] = sym.terminal_id();
    return;
  }
  const CompiledRule& rule = view_.rule(sym.rule_id());
  if (rule.flat_index != kCompiledInvalid) {
    // Pre-flattened expansion: one memcpy per unfold (possibly partial
    // at the very end of the output buffer).
    const std::size_t take = static_cast<std::size_t>(
        std::min<std::uint64_t>(rule.exp_len, count - filled));
    std::memcpy(out + filled, view_.expansions() + rule.flat_index,
                take * sizeof(TerminalId));
    filled += take;
    return;
  }
  for (std::uint32_t id = rule.head;
       id != kCompiledInvalid && filled < count;
       id = view_.node(id).next) {
    const CompiledNode& node = view_.node(id);
    for (std::uint64_t rep = 0; rep < node.exp && filled < count; ++rep) {
      emit_symbol(node.sym_raw, out, filled, count);
    }
  }
}

std::size_t CompiledPredictor::predict_sequence_into(TerminalId* out,
                                                     std::size_t count) const {
  if (predictions_suppressed() || candidates_.empty()) return 0;
  const CompiledPath* best = &candidates_.front();
  std::uint64_t best_weight = best->weight(view_);
  for (const CompiledPath& candidate : candidates_) {
    const std::uint64_t weight = candidate.weight(view_);
    if (weight > best_weight) {
      best = &candidate;
      best_weight = weight;
    }
  }
  // Emit the best candidate's future as run fills and expansion copies
  // instead of advancing a path copy step by step: the remaining
  // repetitions of the terminal run, then per level the following
  // siblings and the parent's remaining repetitions (same successor
  // order resolve_terminal walks).
  std::size_t filled = 0;
  const CompiledNode& front = view_.node(best->element(0).node);
  const TerminalId t0 = Symbol::from_raw(front.sym_raw).terminal_id();
  for (std::uint64_t rep = best->element(0).rep + 1;
       rep < front.exp && filled < count; ++rep) {
    out[filled++] = t0;
  }
  const std::size_t depth = best->depth();
  for (std::size_t level = 0; level < depth && filled < count; ++level) {
    for (std::uint32_t id = view_.node(best->element(level).node).next;
         id != kCompiledInvalid && filled < count;
         id = view_.node(id).next) {
      const CompiledNode& node = view_.node(id);
      for (std::uint64_t rep = 0; rep < node.exp && filled < count; ++rep) {
        emit_symbol(node.sym_raw, out, filled, count);
      }
    }
    if (level + 1 == depth) break;
    const CompiledPathElement& parent = best->element(level + 1);
    const CompiledNode& pnode = view_.node(parent.node);
    for (std::uint64_t rep = parent.rep + 1;
         rep < pnode.exp && filled < count; ++rep) {
      emit_symbol(pnode.sym_raw, out, filled, count);
    }
  }
  return filled;
}

std::optional<double> CompiledPredictor::expect_ns(
    const CompiledPath& path) const {
  const std::size_t depth =
      std::min(path.depth(), TimingModel::kMaxContextDepth);
  for (std::size_t levels = depth; levels >= 1; --levels) {
    double mean = 0.0;
    if (view_.timing_lookup(path.suffix_key(levels), mean)) return mean;
  }
  if (view_.timing_global_count() > 0) {
    return view_.timing_global_sum() /
           static_cast<double>(view_.timing_global_count());
  }
  return std::nullopt;
}

std::optional<double> CompiledPredictor::predict_time_ns(
    std::size_t distance) const {
  PYTHIA_ASSERT(distance >= 1);
  if (!view_.has_timing() || predictions_suppressed() ||
      candidates_.empty()) {
    return std::nullopt;
  }
  double weighted_sum = 0.0;
  double total_weight = 0.0;
  for (const CompiledPath& candidate : candidates_) {
    CompiledPath& future = future_scratch_;
    future = candidate;
    const double weight = static_cast<double>(candidate.weight(view_));
    double elapsed = 0.0;
    bool alive = true;
    for (std::size_t step = 0; step < distance; ++step) {
      if (!future.advance(view_)) {
        alive = false;
        break;
      }
      const std::optional<double> step_ns = expect_ns(future);
      if (!step_ns.has_value()) {
        alive = false;
        break;
      }
      elapsed += *step_ns;
    }
    if (!alive) continue;
    weighted_sum += weight * elapsed;
    total_weight += weight;
  }
  if (total_weight <= 0.0) return std::nullopt;
  return weighted_sum / total_weight;
}

}  // namespace pythia
