#include "core/lazy_predictor.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "support/assert.hpp"
#include "support/hash.hpp"

namespace pythia {

// ---------------------------------------------------------------------------
// PartialPath

std::vector<PathElement> PartialPath::descend(const Grammar& grammar,
                                              const Node* node,
                                              std::uint64_t rep) {
  // Terminal-first chain covering `node` at repetition `rep`, descending
  // into rule bodies down to the first terminal.
  std::vector<PathElement> downward;
  const Node* cursor = node;
  std::uint64_t cursor_rep = rep;
  while (true) {
    downward.push_back({cursor, cursor_rep});
    if (cursor->sym.is_terminal()) break;
    const Rule* rule = grammar.rule_by_id(cursor->sym.rule_id());
    PYTHIA_ASSERT(rule != nullptr && rule->head != nullptr);
    cursor = rule->head;
    cursor_rep = 0;
  }
  return {downward.rbegin(), downward.rend()};
}

void PartialPath::extend_past(const Grammar& grammar, const Node* completed,
                              std::vector<PartialPath>& out,
                              std::size_t limit) {
  // We have just finished (one repetition of) `completed`'s symbol and
  // exhausted its repetitions as far as the chain knows. Possible
  // continuations within the same body: the next node. Otherwise the
  // rule that owns `completed` is itself complete — branch over its
  // usage sites (the lazy extension).
  if (completed->next != nullptr) {
    if (out.size() >= limit) return;
    out.emplace_back(descend(grammar, completed->next, 0));
    return;
  }
  const Rule* owner = completed->owner;
  if (owner->id == 0) return;  // past the end of the root: trace over
  for (const Node* user : owner->users) {
    if (out.size() >= limit) return;
    if (user->exp > 1) {
      // Another iteration of the rule at this usage site. The concrete
      // repetition index is unknown; 1 is the representative "mid-run"
      // value (it keeps further iterations possible when exp > 2).
      std::vector<PathElement> chain = descend(grammar, owner->head, 0);
      chain.push_back({user, 1});
      out.emplace_back(std::move(chain));
    }
    // Or the usage site itself is finished: continue past it.
    extend_past(grammar, user, out, limit);
  }
}

void PartialPath::successors(const Grammar& grammar,
                             std::vector<PartialPath>& out,
                             std::size_t limit) const {
  PYTHIA_ASSERT(!chain_.empty());
  // Deterministic part: find the shallowest known level with a successor
  // (exactly ProgressPath::advance on the suffix).
  for (std::size_t level = 0; level < chain_.size(); ++level) {
    const PathElement& element = chain_[level];
    if (element.rep + 1 < element.node->exp) {
      std::vector<PathElement> chain = descend(
          grammar, element.node, element.rep + 1);
      chain.insert(chain.end(), chain_.begin() +
                                    static_cast<std::ptrdiff_t>(level) + 1,
                   chain_.end());
      if (out.size() < limit) out.emplace_back(std::move(chain));
      return;
    }
    if (element.node->next != nullptr) {
      std::vector<PathElement> chain =
          descend(grammar, element.node->next, 0);
      chain.insert(chain.end(), chain_.begin() +
                                    static_cast<std::ptrdiff_t>(level) + 1,
                   chain_.end());
      if (out.size() < limit) out.emplace_back(std::move(chain));
      return;
    }
  }
  // Knowledge exhausted: branch over the contexts of the top element.
  extend_past(grammar, chain_.back().node, out, limit);
}

void PartialPath::anchors(const Grammar& grammar, TerminalId event,
                          std::size_t limit,
                          std::vector<PartialPath>& out) {
  PYTHIA_ASSERT_MSG(grammar.finalized(), "anchors require finalize()");
  for (const Node* node : grammar.occurrences_of(event)) {
    if (out.size() >= limit) return;
    out.emplace_back(std::vector<PathElement>{{node, 0}});
    if (node->exp > 1 && out.size() < limit) {
      out.emplace_back(
          std::vector<PathElement>{{node, node->exp - 1}});
    }
  }
}

std::uint64_t PartialPath::hash() const {
  std::uint64_t h = 0xa5a5a5a55a5a5a5aULL;
  for (const PathElement& element : chain_) {
    h = support::hash_combine(
        h, reinterpret_cast<std::uintptr_t>(element.node));
    h = support::hash_combine(h, element.rep);
  }
  return h;
}

// ---------------------------------------------------------------------------
// LazyPredictor

LazyPredictor::LazyPredictor(const Grammar& grammar)
    : LazyPredictor(grammar, Options{}) {}

LazyPredictor::LazyPredictor(const Grammar& grammar, Options options)
    : grammar_(grammar), options_(options) {
  PYTHIA_ASSERT_MSG(grammar.finalized(),
                    "LazyPredictor requires a finalized grammar");
}

void LazyPredictor::dedupe_and_cap(std::vector<PartialPath>& paths) const {
  std::unordered_set<std::uint64_t> seen;
  std::vector<PartialPath> unique;
  unique.reserve(paths.size());
  for (PartialPath& path : paths) {
    if (seen.insert(path.hash()).second) unique.push_back(std::move(path));
  }
  if (unique.size() > options_.max_candidates) {
    std::stable_sort(unique.begin(), unique.end(),
                     [](const PartialPath& a, const PartialPath& b) {
                       return a.weight() > b.weight();
                     });
    unique.resize(options_.max_candidates);
  }
  paths = std::move(unique);
}

void LazyPredictor::anchor(TerminalId event) {
  candidates_.clear();
  std::vector<PartialPath> paths;
  PartialPath::anchors(grammar_, event, options_.max_anchor_paths, paths);
  dedupe_and_cap(paths);
  candidates_ = std::move(paths);
}

void LazyPredictor::observe(TerminalId event) {
  ++stats_.observed;
  if (!candidates_.empty()) {
    std::vector<PartialPath> next;
    std::vector<PartialPath> scratch;
    for (const PartialPath& candidate : candidates_) {
      scratch.clear();
      candidate.successors(grammar_, scratch, options_.max_anchor_paths);
      for (PartialPath& successor : scratch) {
        if (successor.terminal() == event) {
          next.push_back(std::move(successor));
        }
      }
    }
    if (!next.empty()) {
      ++stats_.advanced;
      dedupe_and_cap(next);
      candidates_ = std::move(next);
      return;
    }
  }
  anchor(event);
  if (candidates_.empty()) {
    ++stats_.unknown;
  } else {
    ++stats_.reanchored;
  }
}

std::vector<Prediction> LazyPredictor::predict_distribution(
    std::size_t distance) const {
  PYTHIA_ASSERT(distance >= 1);
  std::vector<Prediction> out;
  if (candidates_.empty()) return out;

  // Breadth-limited simulation: each step expands every frontier path to
  // its successors (weights carried along, split equally on branches).
  struct Weighted {
    PartialPath path;
    double weight;
  };
  std::vector<Weighted> frontier;
  frontier.reserve(candidates_.size());
  for (const PartialPath& candidate : candidates_) {
    frontier.push_back({candidate, static_cast<double>(candidate.weight())});
  }

  std::vector<PartialPath> scratch;
  for (std::size_t step = 0; step < distance; ++step) {
    std::vector<Weighted> next;
    for (const Weighted& entry : frontier) {
      scratch.clear();
      entry.path.successors(grammar_, scratch, options_.max_anchor_paths);
      if (scratch.empty()) continue;  // end of trace on this branch
      const double share =
          entry.weight / static_cast<double>(scratch.size());
      for (PartialPath& successor : scratch) {
        next.push_back({std::move(successor), share});
      }
    }
    if (next.size() > options_.max_candidates) {
      std::stable_sort(next.begin(), next.end(),
                       [](const Weighted& a, const Weighted& b) {
                         return a.weight > b.weight;
                       });
      next.resize(options_.max_candidates);
    }
    frontier = std::move(next);
    if (frontier.empty()) return out;
  }

  std::unordered_map<TerminalId, double> votes;
  double total = 0.0;
  for (const Weighted& entry : frontier) {
    votes[entry.path.terminal()] += entry.weight;
    total += entry.weight;
  }
  if (total <= 0.0) return out;
  out.reserve(votes.size());
  for (const auto& [event, weight] : votes) {
    out.push_back({event, weight / total});
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Prediction& a, const Prediction& b) {
                     return a.probability > b.probability;
                   });
  return out;
}

std::optional<Prediction> LazyPredictor::predict(
    std::size_t distance) const {
  std::vector<Prediction> distribution = predict_distribution(distance);
  if (distribution.empty()) return std::nullopt;
  return distribution.front();
}

}  // namespace pythia
