#include "core/predictor.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace pythia {

Predictor::Predictor(const Grammar& grammar, const TimingModel* timing)
    : Predictor(grammar, timing, Options{}) {}

Predictor::Predictor(const Grammar& grammar, const TimingModel* timing,
                     Options options)
    : grammar_(grammar),
      timing_(timing),
      options_(options),
      jitter_rng_(options.breaker.jitter_seed ^ 0x9e3779b97f4a7c15ULL) {
  PYTHIA_ASSERT_MSG(grammar.finalized(),
                    "Predictor requires a finalized grammar");
}

std::uint32_t Predictor::jittered_spacing(std::uint32_t spacing) {
  const double jitter = options_.breaker.backoff_jitter;
  if (jitter <= 0.0 || spacing <= 1) return spacing;
  const double clamped = jitter < 1.0 ? jitter : 1.0;
  const auto span = static_cast<std::uint32_t>(clamped *
                                               static_cast<double>(spacing));
  if (span == 0) return spacing;
  const auto cut = static_cast<std::uint32_t>(jitter_rng_.below(span + 1));
  return std::max<std::uint32_t>(1, spacing - cut);
}

void Predictor::dedupe_and_cap(std::vector<ProgressPath>& paths) {
  // In-place compaction of first occurrences. The anchor cap bounds the
  // working set to a few hundred paths, so linear hash probing beats a
  // freshly allocated hash set.
  seen_hashes_.clear();
  std::size_t kept = 0;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const std::uint64_t hash = paths[i].hash();
    bool duplicate = false;
    for (const std::uint64_t seen : seen_hashes_) {
      if (seen == hash) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    seen_hashes_.push_back(hash);
    if (kept != i) paths[kept] = std::move(paths[i]);
    ++kept;
  }
  paths.resize(kept);

  if (paths.size() > options_.max_candidates) {
    // Keep the most frequently executed positions (occurrence weights).
    // Sorting (weight desc, index asc) reproduces the stable order the
    // old stable_sort produced, without its temporary buffer.
    rank_scratch_.clear();
    for (std::size_t i = 0; i < paths.size(); ++i) {
      rank_scratch_.push_back(
          {paths[i].weight(), static_cast<std::uint32_t>(i)});
    }
    std::sort(rank_scratch_.begin(), rank_scratch_.end(),
              [](const RankEntry& a, const RankEntry& b) {
                return a.weight != b.weight ? a.weight > b.weight
                                            : a.index < b.index;
              });
    sorted_scratch_.clear();
    for (std::size_t i = 0; i < options_.max_candidates; ++i) {
      sorted_scratch_.push_back(std::move(paths[rank_scratch_[i].index]));
    }
    paths.swap(sorted_scratch_);
  }
}

void Predictor::anchor(TerminalId event) {
  ++stats_.anchors;
  candidates_.clear();
  scratch_paths_.clear();
  ProgressPath::enumerate_occurrences(grammar_, event,
                                      options_.max_anchor_paths,
                                      scratch_paths_);
  dedupe_and_cap(scratch_paths_);
  candidates_.swap(scratch_paths_);
}

void Predictor::record_outcome(bool advanced) {
  const std::size_t cap = options_.breaker.window;
  if (cap == 0) return;
  if (window_.size() != cap) window_.assign(cap, 0);
  if (window_count_ < cap) {
    ++window_count_;
  } else if (window_[window_next_] != 0) {
    --window_advanced_;
  }
  window_[window_next_] = advanced ? 1 : 0;
  if (advanced) ++window_advanced_;
  window_next_ = (window_next_ + 1) % cap;
}

void Predictor::enter_degraded() {
  health_ = Health::kDegraded;
  miss_streak_ = 0;
  advance_streak_ = 0;
  backoff_ = std::max<std::uint32_t>(1, options_.breaker.backoff_initial);
  probe_countdown_ = jittered_spacing(backoff_);
  // A position that stopped matching the execution is worse than none:
  // predictions from it would be confidently wrong.
  candidates_.clear();
}

void Predictor::observe(TerminalId event) {
  ++stats_.observed;
  const Options::Breaker& breaker = options_.breaker;

  if (breaker.enabled && health_ == Health::kDegraded) {
    // Rationed probing: most events cost one counter decrement; every
    // backoff_-th event pays for one re-anchor attempt.
    if (probe_countdown_ > 1) {
      --probe_countdown_;
      ++stats_.anchors_suppressed;
      if (grammar_.occurrences_of(event).empty()) {
        ++stats_.unknown;
      } else {
        ++stats_.reanchored;
      }
      record_outcome(false);
      return;
    }
    anchor(event);
    record_outcome(false);
    if (candidates_.empty()) {
      ++stats_.unknown;
      backoff_ = std::min(backoff_ * 2, std::max<std::uint32_t>(
                                            1, breaker.backoff_max));
      probe_countdown_ = jittered_spacing(backoff_);
    } else {
      ++stats_.reanchored;
      health_ = Health::kRecovering;
      advance_streak_ = 0;
    }
    return;
  }

  if (!candidates_.empty()) {
    scratch_paths_.clear();
    for (ProgressPath& path : candidates_) {
      ProgressPath next = path;  // advance works on a copy; misses drop out
      if (next.advance(grammar_) && next.terminal() == event) {
        scratch_paths_.push_back(std::move(next));
      }
    }
    if (!scratch_paths_.empty()) {
      ++stats_.advanced;
      dedupe_and_cap(scratch_paths_);
      candidates_.swap(scratch_paths_);
      record_outcome(true);
      if (breaker.enabled) {
        miss_streak_ = 0;
        if (health_ == Health::kRecovering &&
            ++advance_streak_ >= breaker.recover_streak) {
          health_ = Health::kHealthy;
        }
      }
      return;
    }
  }
  // Unexpected (or first) event: re-anchor on all its occurrences.
  anchor(event);
  if (candidates_.empty()) {
    ++stats_.unknown;
  } else {
    ++stats_.reanchored;
  }
  record_outcome(false);
  if (!breaker.enabled) return;
  advance_streak_ = 0;
  if (health_ == Health::kRecovering) {
    // The probe's catch didn't hold — back to rationed probing.
    enter_degraded();
    return;
  }
  ++miss_streak_;
  const bool streak_tripped = breaker.miss_streak_limit > 0 &&
                              miss_streak_ >= breaker.miss_streak_limit;
  const bool confidence_tripped = window_count_ >= breaker.min_samples &&
                                  confidence() < breaker.degrade_below;
  if (streak_tripped || confidence_tripped) enter_degraded();
}

double Predictor::accumulate_votes(std::size_t distance) const {
  // Simulate the future of every candidate (paper §II-C: "predicting
  // future events boils down to simulating the future execution from a
  // copy of the current progress sequences"). Votes land in a flat,
  // reused scratch vector — candidate counts are capped at
  // max_candidates, so the linear terminal lookup is a handful of
  // comparisons and the whole pass makes no allocator calls.
  vote_scratch_.clear();
  double total = 0.0;
  for (const ProgressPath& candidate : candidates_) {
    const double weight = static_cast<double>(candidate.weight());
    TerminalId event;
    if (distance == 1) {
      // Next-event votes never need the simulated path itself — peek the
      // successor terminal without the path copy (the predict(1) hot path).
      if (!candidate.peek_next(grammar_, event)) continue;
    } else {
      future_scratch_ = candidate;
      bool alive = true;
      for (std::size_t step = 0; step < distance; ++step) {
        if (!future_scratch_.advance(grammar_)) {
          alive = false;
          break;
        }
      }
      if (!alive) continue;
      event = future_scratch_.terminal();
    }
    bool merged = false;
    for (Prediction& vote : vote_scratch_) {
      if (vote.event == event) {
        vote.probability += weight;
        merged = true;
        break;
      }
    }
    if (!merged) vote_scratch_.push_back({event, weight});
    total += weight;
  }
  if (total > 0.0) {
    for (Prediction& vote : vote_scratch_) vote.probability /= total;
  }
  return total;
}

std::vector<Prediction> Predictor::predict_distribution(
    std::size_t distance) const {
  PYTHIA_ASSERT(distance >= 1);
  std::vector<Prediction> out;
  if (predictions_suppressed() || candidates_.empty()) return out;
  if (accumulate_votes(distance) <= 0.0) return out;
  out.assign(vote_scratch_.begin(), vote_scratch_.end());
  std::stable_sort(out.begin(), out.end(),
                   [](const Prediction& a, const Prediction& b) {
                     return a.probability > b.probability;
                   });
  return out;
}

std::optional<Prediction> Predictor::predict(std::size_t distance) const {
  PYTHIA_ASSERT(distance >= 1);
  if (predictions_suppressed() || candidates_.empty()) return std::nullopt;
  if (accumulate_votes(distance) <= 0.0) return std::nullopt;
  // First maximum in first-seen order — the element stable_sort would put
  // in front — without materializing the sorted distribution.
  const Prediction* best = &vote_scratch_.front();
  for (const Prediction& vote : vote_scratch_) {
    if (vote.probability > best->probability) best = &vote;
  }
  return *best;
}

std::vector<TerminalId> Predictor::predict_sequence(std::size_t count) const {
  std::vector<TerminalId> out(count);
  out.resize(predict_sequence_into(out.data(), count));
  return out;
}

std::size_t Predictor::predict_sequence_into(TerminalId* out,
                                             std::size_t count) const {
  if (predictions_suppressed() || candidates_.empty()) return 0;
  const ProgressPath* best = &candidates_.front();
  for (const ProgressPath& candidate : candidates_) {
    if (candidate.weight() > best->weight()) best = &candidate;
  }
  ProgressPath& future = future_scratch_;
  future = *best;
  std::size_t filled = 0;
  while (filled < count && future.advance(grammar_)) {
    out[filled++] = future.terminal();
  }
  return filled;
}

std::uint64_t Predictor::reference_occurrences(TerminalId event) const {
  std::uint64_t total = 0;
  for (const Node* node : grammar_.occurrences_of(event)) {
    total += node->exp * node->owner->occurrences;
  }
  return total;
}

std::optional<double> Predictor::predict_time_ns(std::size_t distance) const {
  PYTHIA_ASSERT(distance >= 1);
  if (timing_ == nullptr || predictions_suppressed() || candidates_.empty()) {
    return std::nullopt;
  }

  // Weighted average over candidates of the summed per-step expected
  // durations along each candidate's own future.
  double weighted_sum = 0.0;
  double total_weight = 0.0;
  for (const ProgressPath& candidate : candidates_) {
    ProgressPath& future = future_scratch_;
    future = candidate;
    const double weight = static_cast<double>(candidate.weight());
    double elapsed = 0.0;
    bool alive = true;
    for (std::size_t step = 0; step < distance; ++step) {
      if (!future.advance(grammar_)) {
        alive = false;
        break;
      }
      const std::optional<double> step_ns = timing_->expect_ns(future);
      if (!step_ns.has_value()) {
        alive = false;
        break;
      }
      elapsed += *step_ns;
    }
    if (!alive) continue;
    weighted_sum += weight * elapsed;
    total_weight += weight;
  }
  if (total_weight <= 0.0) return std::nullopt;
  return weighted_sum / total_weight;
}

}  // namespace pythia
