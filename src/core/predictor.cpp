#include "core/predictor.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "support/assert.hpp"

namespace pythia {

Predictor::Predictor(const Grammar& grammar, const TimingModel* timing)
    : Predictor(grammar, timing, Options{}) {}

Predictor::Predictor(const Grammar& grammar, const TimingModel* timing,
                     Options options)
    : grammar_(grammar), timing_(timing), options_(options) {
  PYTHIA_ASSERT_MSG(grammar.finalized(),
                    "Predictor requires a finalized grammar");
}

void Predictor::dedupe_and_cap(std::vector<ProgressPath>& paths) const {
  std::unordered_set<std::uint64_t> seen;
  std::vector<ProgressPath> unique;
  unique.reserve(paths.size());
  for (ProgressPath& path : paths) {
    if (seen.insert(path.hash()).second) unique.push_back(std::move(path));
  }
  if (unique.size() > options_.max_candidates) {
    // Keep the most frequently executed positions (occurrence weights).
    std::stable_sort(unique.begin(), unique.end(),
                     [](const ProgressPath& a, const ProgressPath& b) {
                       return a.weight() > b.weight();
                     });
    unique.resize(options_.max_candidates);
  }
  paths = std::move(unique);
}

void Predictor::anchor(TerminalId event) {
  candidates_.clear();
  std::vector<ProgressPath> paths;
  ProgressPath::enumerate_occurrences(grammar_, event,
                                      options_.max_anchor_paths, paths);
  dedupe_and_cap(paths);
  candidates_ = std::move(paths);
}

void Predictor::observe(TerminalId event) {
  ++stats_.observed;
  if (!candidates_.empty()) {
    std::vector<ProgressPath> advanced;
    advanced.reserve(candidates_.size());
    for (ProgressPath& path : candidates_) {
      ProgressPath next = path;  // advance works on a copy; misses drop out
      if (next.advance(grammar_) && next.terminal() == event) {
        advanced.push_back(std::move(next));
      }
    }
    if (!advanced.empty()) {
      ++stats_.advanced;
      dedupe_and_cap(advanced);
      candidates_ = std::move(advanced);
      return;
    }
  }
  // Unexpected (or first) event: re-anchor on all its occurrences.
  anchor(event);
  if (candidates_.empty()) {
    ++stats_.unknown;
  } else {
    ++stats_.reanchored;
  }
}

std::vector<Prediction> Predictor::predict_distribution(
    std::size_t distance) const {
  PYTHIA_ASSERT(distance >= 1);
  std::vector<Prediction> out;
  if (candidates_.empty()) return out;

  // Simulate the future of every candidate (paper §II-C: "predicting
  // future events boils down to simulating the future execution from a
  // copy of the current progress sequences").
  std::unordered_map<TerminalId, double> votes;
  double total = 0.0;
  for (const ProgressPath& candidate : candidates_) {
    ProgressPath future = candidate;
    const double weight = static_cast<double>(candidate.weight());
    bool alive = true;
    for (std::size_t step = 0; step < distance; ++step) {
      if (!future.advance(grammar_)) {
        alive = false;
        break;
      }
    }
    if (!alive) continue;
    votes[future.terminal()] += weight;
    total += weight;
  }
  if (total <= 0.0) return out;

  out.reserve(votes.size());
  for (const auto& [event, weight] : votes) {
    out.push_back({event, weight / total});
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Prediction& a, const Prediction& b) {
                     return a.probability > b.probability;
                   });
  return out;
}

std::optional<Prediction> Predictor::predict(std::size_t distance) const {
  std::vector<Prediction> distribution = predict_distribution(distance);
  if (distribution.empty()) return std::nullopt;
  return distribution.front();
}

std::vector<TerminalId> Predictor::predict_sequence(std::size_t count) const {
  std::vector<TerminalId> out;
  if (candidates_.empty()) return out;
  const ProgressPath* best = &candidates_.front();
  for (const ProgressPath& candidate : candidates_) {
    if (candidate.weight() > best->weight()) best = &candidate;
  }
  ProgressPath future = *best;
  out.reserve(count);
  for (std::size_t step = 0; step < count; ++step) {
    if (!future.advance(grammar_)) break;
    out.push_back(future.terminal());
  }
  return out;
}

std::uint64_t Predictor::reference_occurrences(TerminalId event) const {
  std::uint64_t total = 0;
  for (const Node* node : grammar_.occurrences_of(event)) {
    total += node->exp * node->owner->occurrences;
  }
  return total;
}

std::optional<double> Predictor::predict_time_ns(std::size_t distance) const {
  PYTHIA_ASSERT(distance >= 1);
  if (timing_ == nullptr || candidates_.empty()) return std::nullopt;

  // Weighted average over candidates of the summed per-step expected
  // durations along each candidate's own future.
  double weighted_sum = 0.0;
  double total_weight = 0.0;
  for (const ProgressPath& candidate : candidates_) {
    ProgressPath future = candidate;
    const double weight = static_cast<double>(candidate.weight());
    double elapsed = 0.0;
    bool alive = true;
    for (std::size_t step = 0; step < distance; ++step) {
      if (!future.advance(grammar_)) {
        alive = false;
        break;
      }
      const std::optional<double> step_ns = timing_->expect_ns(future);
      if (!step_ns.has_value()) {
        alive = false;
        break;
      }
      elapsed += *step_ns;
    }
    if (!alive) continue;
    weighted_sum += weight * elapsed;
    total_weight += weight;
  }
  if (total_weight <= 0.0) return std::nullopt;
  return weighted_sum / total_weight;
}

}  // namespace pythia
