// Trace file format: what PYTHIA-RECORD saves at the end of the reference
// execution and what PYTHIA-PREDICT reloads (paper §II).
//
// Layout (little-endian, versioned):
//   magic "PYTHIA01"
//   event registry (kind names, (kind, aux) event table)
//   one section per recorded thread:
//     grammar rules (live rules remapped to dense ids, root first)
//     timing contexts (suffix-key -> duration stats)
//
// Timing context keys hash grammar *stable node ids*; finalize() assigns
// them deterministically from the rule/body order, which the serializer
// preserves, so keys computed by the reader match the writer's.
#pragma once

#include <string>
#include <vector>

#include "core/event.hpp"
#include "core/recorder.hpp"

namespace pythia {

/// A complete application trace: shared event registry plus one
/// ThreadTrace per recorded thread (the paper keeps one grammar per
/// thread, §III-C1).
struct Trace {
  EventRegistry registry;
  std::vector<ThreadTrace> threads;

  void save(const std::string& path) const;
  static Trace load(const std::string& path);
};

}  // namespace pythia
