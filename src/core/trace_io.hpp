// Trace file format: what PYTHIA-RECORD saves at the end of the reference
// execution and what PYTHIA-PREDICT reloads (paper §II).
//
// Current format (little-endian): magic "PYTHIA02", then checksummed
// sections — one registry section (kind names, (kind, aux) event table,
// thread count), then one section per recorded thread (grammar rules with
// live rules remapped to dense ids, root first; timing contexts). Every
// section carries a CRC32 over its payload and a CRC32 over its own
// header, so any corruption is detected before parsing and a damaged
// thread section can be skipped without losing the rest of the file.
// After the thread sections the writer appends one optional *compiled*
// section per thread (kind 3): the grammar lowered into the zero-copy
// prediction automaton of compile.hpp, 64-byte aligned in the file so it
// can be served straight from an mmap. Readers older than the compiled
// section simply stop after the last thread section — the trailing bytes
// are invisible to them. Legacy "PYTHIA01" files (no checksums, no
// framing) are still readable.
//
// Timing context keys hash grammar *stable node ids*; finalize() assigns
// them deterministically from the rule/body order, which the serializer
// preserves, so keys computed by the reader match the writer's.
//
// Error model: try_load()/try_save() form the no-throw library boundary —
// corruption, I/O failures and unsupported versions come back as a
// pythia::Status, never as an exception or an abort. The legacy
// load()/save() wrappers throw std::runtime_error and treat *any*
// corruption as fatal (no salvage).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/event.hpp"
#include "core/recorder.hpp"
#include "support/status.hpp"

namespace pythia {

struct TraceLoadOptions {
  /// When a thread section fails its checksum or structural validation,
  /// keep loading: the damaged section becomes an empty placeholder whose
  /// Status is recorded in Trace::section_status, and the consumer (e.g.
  /// harness::run_app) degrades that rank to Oracle Mode::kOff. File-level
  /// damage — magic, registry section, unreadable framing — always fails
  /// the whole load. With salvage off, any damage fails the load.
  bool salvage_sections = true;

  /// Finalize loaded grammars (assigns stable node ids; required before
  /// prediction). The session recovery path loads checkpoints with this
  /// off, because a finalized grammar refuses further append() and a
  /// recovered session must keep recording.
  bool finalize_grammars = true;
};

/// A complete application trace: shared event registry plus one
/// ThreadTrace per recorded thread (the paper keeps one grammar per
/// thread, §III-C1).
struct Trace {
  EventRegistry registry;
  std::vector<ThreadTrace> threads;

  /// Per-thread load status, parallel to `threads`. Empty for traces
  /// built in memory (every section implicitly OK). A non-OK entry marks
  /// a salvaged placeholder: empty grammar, no timing.
  std::vector<Status> section_status;

  /// Per-thread status of the optional *compiled* section, parallel to
  /// `threads` (empty for in-memory and legacy traces). A non-OK entry
  /// means the file carried a compiled artifact for that thread but it
  /// failed validation and was dropped — the thread still serves via the
  /// interpreted predictor (threads[i].compiled.valid() is the "is it
  /// actually there" check; this vector explains why it is not).
  std::vector<Status> compiled_status;

  /// True when thread `index` exists and loaded intact.
  bool thread_ok(std::size_t index) const {
    return index < threads.size() &&
           (section_status.empty() || section_status[index].ok());
  }
  std::size_t salvaged_threads() const {
    std::size_t count = 0;
    for (const Status& status : section_status) {
      if (!status.ok()) ++count;
    }
    return count;
  }
  bool fully_intact() const { return salvaged_threads() == 0; }

  /// Writes the trace in the current (PYTHIA02) format. No-throw.
  Status try_save(const std::string& path) const;

  /// Reads a PYTHIA02 or legacy PYTHIA01 file. No-throw: every failure
  /// mode — missing file, bad magic, checksum mismatch, structural
  /// corruption (including rule-reference cycles) — is a Status. With
  /// salvage enabled (default), per-thread damage degrades that section
  /// instead of failing the load; inspect section_status on the result.
  static Result<Trace> try_load(const std::string& path,
                                const TraceLoadOptions& options = {});

  // Throwing wrappers kept for tools and tests: std::runtime_error on any
  // failure, strict loading (a salvageable section is still an error).
  void save(const std::string& path) const;
  static Trace load(const std::string& path);
};

/// Non-owning view of one thread's state, so callers holding live (and
/// non-copyable) Grammar/TimingModel objects — the session checkpointer —
/// can serialize without surrendering them.
struct ThreadTraceView {
  const Grammar* grammar = nullptr;
  const TimingModel* timing = nullptr;  ///< nullptr = empty model
};

/// Writes a PYTHIA02 trace file from views. With `durable` the file is
/// fsync'd before returning. Plain write, not atomic — checkpointing
/// writes to a temp name and renames on its own schedule.
Status save_trace_file(const std::string& path, const EventRegistry& registry,
                       const std::vector<ThreadTraceView>& threads,
                       bool durable = false);

/// Deterministic content digest of one recorded thread: a 64-bit hash
/// over the exact payload bytes the PYTHIA02 writer would emit for this
/// thread's section (grammar rules in stable dense-id order, then timing
/// contexts). Equal digests certify byte-identical serialized sections —
/// the check the parallel engine's determinism tests (and trace_inspect)
/// use to prove sharded record equals sequential record, rank by rank.
std::uint64_t thread_section_digest(const ThreadTrace& thread);

/// Same digest from live parts (`timing` nullptr = empty model) — what
/// the checkpointer and the grammar compiler use before a ThreadTrace
/// exists.
std::uint64_t thread_section_digest(const Grammar& grammar,
                                    const TimingModel* timing);

/// Whole-trace digest: registry tables plus every thread-section digest,
/// order-sensitive.
std::uint64_t trace_digest(const Trace& trace);

/// Zero-copy load over an already-mapped PYTHIA02 image (`data` spans the
/// whole file, magic included). Decodes the registry tables, *skips* the
/// thread sections entirely — their pages are never touched — and points
/// each thread's CompiledView directly at the mapped compiled section
/// (the writer 64-byte aligns blobs in the file, so a page-aligned
/// mapping preserves the alignment CompiledView::parse demands).
///
/// The returned Trace borrows `data`: the caller must keep the mapping
/// alive for as long as the trace (engine::TraceSnapshot pins the
/// support::MappedFile). Threads without a valid compiled section are
/// inert placeholders with a non-OK section_status — callers fall back
/// to Trace::try_load when they need those threads. Registry or
/// thread-framing damage fails the load outright (the fallback loader
/// can salvage; this one cannot).
Result<Trace> load_trace_zero_copy(const unsigned char* data,
                                   std::size_t size);

}  // namespace pythia
