// PYTHIA-PREDICT: tracks the current execution against the reference
// grammar and predicts future events and their timing (paper §II-B/§II-C).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/grammar.hpp"
#include "core/progress.hpp"
#include "core/timing.hpp"

namespace pythia {

/// A predicted event with its estimated probability (share of the
/// occurrence-weighted candidate votes, §II-C).
struct Prediction {
  TerminalId event = 0;
  double probability = 0.0;
};

class Predictor {
 public:
  struct Options {
    /// Cap on simultaneously tracked progress sequences. Keeps the cost
    /// of observe()/predict() bounded on irregular applications.
    std::size_t max_candidates = 32;
    /// Cap on paths enumerated when (re-)anchoring on an event.
    std::size_t max_anchor_paths = 256;
  };

  explicit Predictor(const Grammar& grammar,
                     const TimingModel* timing = nullptr);
  Predictor(const Grammar& grammar, const TimingModel* timing,
            Options options);

  /// Submits the event that just happened; updates the tracked progress
  /// sequences (advance on match, re-anchor on mismatch, §II-B2).
  void observe(TerminalId event);

  /// Predicts the event that will occur `distance` events from now
  /// (distance 1 = the next event). Returns nullopt when the oracle has
  /// no candidate (event never seen in the reference execution).
  std::optional<Prediction> predict(std::size_t distance) const;

  /// Full vote distribution at `distance`, most probable first.
  std::vector<Prediction> predict_distribution(std::size_t distance) const;

  /// The most probable sequence of the next `count` events: follows the
  /// highest-weight candidate's future in one walk — O(count) instead of
  /// the O(count^2) of calling predict(1..count). May return fewer than
  /// `count` events when the reference trace ends first. Used by
  /// lookahead consumers (send aggregation, prefetching).
  std::vector<TerminalId> predict_sequence(std::size_t count) const;

  /// Number of times `event` occurs in the whole reference execution
  /// (§II-C occurrence counting — the basis of the probabilities).
  std::uint64_t reference_occurrences(TerminalId event) const;

  /// Expected time (ns) from the last observed event until the event
  /// `distance` steps ahead. Requires a timing model.
  std::optional<double> predict_time_ns(std::size_t distance) const;

  /// True when at least one progress sequence is being tracked.
  bool synchronized() const { return !candidates_.empty(); }
  std::size_t candidate_count() const { return candidates_.size(); }

  // Telemetry for the evaluation (fig. 8): how often observe() extended a
  // tracked sequence vs. had to re-anchor or went dark.
  struct Stats {
    std::uint64_t observed = 0;
    std::uint64_t advanced = 0;
    std::uint64_t reanchored = 0;
    std::uint64_t unknown = 0;  ///< event absent from the reference trace
  };
  const Stats& stats() const { return stats_; }

  const Grammar& grammar() const { return grammar_; }

 private:
  void anchor(TerminalId event);
  void dedupe_and_cap(std::vector<ProgressPath>& paths) const;

  const Grammar& grammar_;
  const TimingModel* timing_;
  Options options_;
  std::vector<ProgressPath> candidates_;
  Stats stats_;
};

}  // namespace pythia
