// PYTHIA-PREDICT: tracks the current execution against the reference
// grammar and predicts future events and their timing (paper §II-B/§II-C).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/grammar.hpp"
#include "core/progress.hpp"
#include "core/timing.hpp"
#include "support/rng.hpp"

namespace pythia {

/// A predicted event with its estimated probability (share of the
/// occurrence-weighted candidate votes, §II-C).
struct Prediction {
  TerminalId event = 0;
  double probability = 0.0;
};

/// Tracking health reported by the divergence circuit breaker (§II-B2:
/// the oracle must stay cheap and harmless when the execution diverges
/// from the reference).
///
///   kHealthy    — the tracked progress sequences follow the execution;
///                 predictions are served.
///   kDegraded   — the execution diverged persistently: predictions are
///                 suppressed and re-anchoring is rationed (exponential
///                 backoff), so a desynchronized oracle costs almost
///                 nothing. Consumers revert to their vanilla policy.
///   kRecovering — a probe re-anchor caught the stream again; the breaker
///                 waits for a streak of clean advances before trusting
///                 predictions once more.
enum class Health { kHealthy, kDegraded, kRecovering };

inline const char* to_string(Health health) {
  switch (health) {
    case Health::kHealthy:
      return "healthy";
    case Health::kDegraded:
      return "degraded";
    case Health::kRecovering:
      return "recovering";
  }
  return "?";
}

class Predictor {
 public:
  struct Options {
    /// Cap on simultaneously tracked progress sequences. Keeps the cost
    /// of observe()/predict() bounded on irregular applications.
    std::size_t max_candidates = 32;
    /// Cap on paths enumerated when (re-)anchoring on an event.
    std::size_t max_anchor_paths = 256;

    /// Divergence circuit breaker. Disabled by default so that analysis
    /// uses of the raw Predictor (trace diffing, accuracy studies) see
    /// every re-anchor; Oracle::predict() enables it, because runtime
    /// systems must never pay unbounded re-anchor cost on a stream that
    /// stopped matching the reference (fig. 14).
    struct Breaker {
      bool enabled = false;
      /// Rolling window of observe() outcomes behind confidence().
      std::size_t window = 64;
      /// Minimum outcomes in the window before low confidence alone can
      /// trip the breaker (prevents tripping during warm-up).
      std::size_t min_samples = 16;
      /// Confidence below this trips healthy -> degraded.
      double degrade_below = 0.35;
      /// Consecutive misses (re-anchors or unknowns) that trip the
      /// breaker regardless of the window.
      std::uint32_t miss_streak_limit = 8;
      /// Events between re-anchor probes while degraded; doubles after
      /// every failed probe up to backoff_max (exponential backoff).
      std::uint32_t backoff_initial = 4;
      std::uint32_t backoff_max = 256;
      /// Seeded jitter on the probe spacing: each interval is drawn
      /// uniformly from [spacing*(1-jitter), spacing]. A fleet of
      /// sessions that degraded together (one shared divergence in the
      /// reference) would otherwise re-anchor in lockstep and pay the
      /// enumeration cost as a thundering herd; jitter spreads the
      /// probes. 0 (default) keeps the deterministic spacing.
      double backoff_jitter = 0.0;
      /// Decorrelates sessions sharing identical options — salt it per
      /// session (the serve layer salts with the session id).
      std::uint64_t jitter_seed = 0;
      /// Consecutive advances while recovering before predictions are
      /// trusted again (recovering -> healthy).
      std::uint32_t recover_streak = 8;
    };
    Breaker breaker;

    /// The configuration runtime-system shims get via Oracle::predict():
    /// identical tracking, circuit breaker armed.
    static Options runtime_defaults() {
      Options options;
      options.breaker.enabled = true;
      return options;
    }
  };

  explicit Predictor(const Grammar& grammar,
                     const TimingModel* timing = nullptr);
  Predictor(const Grammar& grammar, const TimingModel* timing,
            Options options);

  /// Submits the event that just happened; updates the tracked progress
  /// sequences (advance on match, re-anchor on mismatch, §II-B2) and the
  /// breaker state machine.
  void observe(TerminalId event);

  /// Predicts the event that will occur `distance` events from now
  /// (distance 1 = the next event). Returns nullopt when the oracle has
  /// no candidate (event never seen in the reference execution) or the
  /// breaker currently suppresses predictions (health != kHealthy).
  std::optional<Prediction> predict(std::size_t distance) const;

  /// Full vote distribution at `distance`, most probable first.
  std::vector<Prediction> predict_distribution(std::size_t distance) const;

  /// The most probable sequence of the next `count` events: follows the
  /// highest-weight candidate's future in one walk — O(count) instead of
  /// the O(count^2) of calling predict(1..count). May return fewer than
  /// `count` events when the reference trace ends first. Used by
  /// lookahead consumers (send aggregation, prefetching).
  std::vector<TerminalId> predict_sequence(std::size_t count) const;

  /// Batched predict_sequence writing into a caller-owned buffer: fills
  /// out[0..count) and returns the number filled (allocation-free after
  /// warm-up — the serving path of engine::PredictSession::predict_n).
  std::size_t predict_sequence_into(TerminalId* out, std::size_t count) const;

  /// Number of times `event` occurs in the whole reference execution
  /// (§II-C occurrence counting — the basis of the probabilities).
  std::uint64_t reference_occurrences(TerminalId event) const;

  /// Expected time (ns) from the last observed event until the event
  /// `distance` steps ahead. Requires a timing model.
  std::optional<double> predict_time_ns(std::size_t distance) const;

  /// True when at least one progress sequence is being tracked.
  bool synchronized() const { return !candidates_.empty(); }
  std::size_t candidate_count() const { return candidates_.size(); }

  /// The tracked progress sequences, in their internal (stable) order.
  /// With the breaker disabled this vector IS the predictor's entire
  /// behavioral state: the grammar-domain diff (src/analysis/diff.cpp)
  /// reads it out, fast-forwards the paths structurally, and writes the
  /// result back with set_candidates().
  const std::vector<ProgressPath>& candidates() const { return candidates_; }

  /// Replaces the tracked progress sequences wholesale. Analysis-only
  /// API: callers must hand back paths that are valid positions of this
  /// predictor's grammar. Does not touch the breaker window or stats.
  void set_candidates(const ProgressPath* data, std::size_t count) {
    candidates_.assign(data, data + count);
  }

  /// Breaker state (always kHealthy when the breaker is disabled).
  Health health() const { return health_; }
  /// Fraction of recent observe() calls that advanced a tracked sequence
  /// (1.0 before any outcome is recorded).
  double confidence() const {
    return window_count_ == 0
               ? 1.0
               : static_cast<double>(window_advanced_) /
                     static_cast<double>(window_count_);
  }

  // Telemetry for the evaluation (fig. 8): how often observe() extended a
  // tracked sequence vs. had to re-anchor or went dark.
  struct Stats {
    std::uint64_t observed = 0;
    std::uint64_t advanced = 0;
    std::uint64_t reanchored = 0;
    std::uint64_t unknown = 0;  ///< event absent from the reference trace
    /// Re-anchor enumerations actually performed (each costs up to
    /// max_anchor_paths path walks)...
    std::uint64_t anchors = 0;
    /// ...and the ones the degraded breaker skipped (each would have been
    /// an enumeration; this is the saved work).
    std::uint64_t anchors_suppressed = 0;
  };
  const Stats& stats() const { return stats_; }

  const Grammar& grammar() const { return grammar_; }
  const Options& options() const { return options_; }

 private:
  void anchor(TerminalId event);
  void dedupe_and_cap(std::vector<ProgressPath>& paths);
  /// Simulates every candidate `distance` steps ahead into vote_scratch_
  /// (probabilities normalized, first-seen order). Returns total weight.
  double accumulate_votes(std::size_t distance) const;
  bool predictions_suppressed() const {
    return options_.breaker.enabled && health_ != Health::kHealthy;
  }
  void record_outcome(bool advanced);
  void enter_degraded();
  /// Probe interval with backoff_jitter applied (identity when off).
  std::uint32_t jittered_spacing(std::uint32_t spacing);

  const Grammar& grammar_;
  const TimingModel* timing_;
  Options options_;
  std::vector<ProgressPath> candidates_;
  Stats stats_;

  // Reusable hot-path scratch: observe()/predict() cycle these buffers
  // instead of allocating per event; after warm-up the steady state makes
  // zero allocator calls (asserted by tests, measured by bench/regress).
  std::vector<ProgressPath> scratch_paths_;   ///< advanced / anchored set
  std::vector<std::uint64_t> seen_hashes_;    ///< dedupe working set
  struct RankEntry {
    std::uint64_t weight;
    std::uint32_t index;
  };
  std::vector<RankEntry> rank_scratch_;       ///< cap-selection ordering
  std::vector<ProgressPath> sorted_scratch_;  ///< cap-selection output
  mutable std::vector<Prediction> vote_scratch_;
  mutable ProgressPath future_scratch_;       ///< per-candidate simulation

  // Breaker state.
  Health health_ = Health::kHealthy;
  std::vector<std::uint8_t> window_;     ///< ring buffer of outcomes
  std::size_t window_next_ = 0;
  std::size_t window_count_ = 0;
  std::size_t window_advanced_ = 0;
  std::uint32_t miss_streak_ = 0;
  std::uint32_t advance_streak_ = 0;
  std::uint32_t backoff_ = 0;            ///< current probe spacing
  std::uint32_t probe_countdown_ = 0;    ///< events until the next probe
  support::Rng jitter_rng_;              ///< seeded probe-spacing jitter
};

}  // namespace pythia
