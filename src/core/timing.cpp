#include "core/timing.hpp"

#include "support/assert.hpp"

namespace pythia {

void TimingModel::add_sample(const ProgressPath& path, double elapsed_ns) {
  const std::size_t depth = std::min(path.depth(), kMaxContextDepth);
  for (std::size_t levels = 1; levels <= depth; ++levels) {
    DurationStat& stat = by_context_[path.suffix_key(levels)];
    stat.sum_ns += elapsed_ns;
    ++stat.count;
  }
  global_.sum_ns += elapsed_ns;
  ++global_.count;
}

std::optional<double> TimingModel::expect_ns(const ProgressPath& path) const {
  const std::size_t depth = std::min(path.depth(), kMaxContextDepth);
  for (std::size_t levels = depth; levels >= 1; --levels) {
    auto it = by_context_.find(path.suffix_key(levels));
    if (it != by_context_.end()) return it->second.mean();
  }
  if (global_.count > 0) return global_.mean();
  return std::nullopt;
}

namespace {

// Shared replay walk; EventAt/TimeAt read entry i of whatever log layout
// the caller recorded.
template <typename EventAt, typename TimeAt>
TimingModel replay_impl(const Grammar& grammar, std::size_t count,
                        EventAt event_at, TimeAt time_at) {
  PYTHIA_ASSERT_MSG(grammar.finalized(), "replay requires finalize()");
  TimingModel model;
  if (count == 0) return model;

  ProgressPath path = ProgressPath::begin(grammar);
  std::uint64_t previous_ns = time_at(0);
  for (std::size_t i = 0; i < count; ++i) {
    PYTHIA_ASSERT_MSG(!path.empty(), "trace shorter than event log");
    PYTHIA_ASSERT_MSG(path.terminal() == event_at(i),
                      "event log diverges from grammar");
    if (i > 0) {
      // The first event has no predecessor; it contributes no duration.
      model.add_sample(path,
                       static_cast<double>(time_at(i) - previous_ns));
    }
    previous_ns = time_at(i);
    if (i + 1 < count) {
      const bool more = path.advance(grammar);
      PYTHIA_ASSERT(more);
    }
  }
  return model;
}

}  // namespace

TimingModel TimingModel::replay(const Grammar& grammar,
                                const std::vector<TerminalId>& events,
                                const std::vector<std::uint64_t>& times_ns) {
  PYTHIA_ASSERT(events.size() == times_ns.size());
  return replay_impl(
      grammar, events.size(), [&](std::size_t i) { return events[i]; },
      [&](std::size_t i) { return times_ns[i]; });
}

TimingModel TimingModel::replay(const Grammar& grammar,
                                const std::vector<TimedEvent>& log) {
  return replay_impl(
      grammar, log.size(), [&](std::size_t i) { return log[i].event; },
      [&](std::size_t i) { return log[i].time_ns(); });
}

}  // namespace pythia
