// On-the-fly grammar reduction of event streams (paper §II-A).
//
// The grammar is a Sequitur derivative with *repetition exponents* (the
// paper follows Cyclitur): every occurrence of a symbol in a rule body
// carries a count of consecutive repetitions, so a loop of 200 iterations
// reduces to a single `A^200` occurrence. Three invariants are maintained
// after every append (paper §II-A):
//
//   1. every non-terminal is used at least twice — where a single
//      occurrence with exponent >= 2 counts as two uses (cf. fig. 3h,
//      `R -> ...B^2`);
//   2. every couple of adjacent symbols appears at most once in the whole
//      grammar (digram uniqueness). When the same couple appears with
//      different left exponents, a rule is carved out for the *minimum*
//      exponent (cf. fig. 3b, where `C -> b^3 c` is split out of `...b^5 c`);
//   3. no symbol appears twice side by side — adjacent equal symbols merge
//      into exponents.
//
// The structure is navigable both downwards (rule body lists) and upwards
// (per-rule user lists), which is what the predictor's progress sequences
// (paper fig. 4/5) require.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "core/symbol.hpp"
#include "support/flat_map.hpp"

namespace pythia {

class EventRegistry;

/// One occurrence of a symbol inside a rule body.
struct Node {
  Symbol sym;
  std::uint64_t exp = 1;  ///< consecutive repetitions, >= 1
  Node* prev = nullptr;
  Node* next = nullptr;
  struct Rule* owner = nullptr;
  bool alive = true;
  /// Stable index assigned by Grammar::finalize() for serialization and
  /// timing keys; kInvalidNodeId until then.
  std::uint32_t stable_id = 0xffffffffu;
};

/// A production. `id` 0 is always the root.
struct Rule {
  std::uint32_t id = 0;
  Node* head = nullptr;
  Node* tail = nullptr;
  std::size_t length = 0;       ///< number of occurrence nodes in the body
  std::vector<Node*> users;     ///< occurrence nodes referencing this rule
  bool alive = true;
  /// Number of times this rule's body unfolds in the full trace; computed
  /// by finalize() (occ(root) == 1).
  std::uint64_t occurrences = 0;
  /// Dirty-epoch stamp (enable_dirty_tracking): the epoch in which this
  /// rule's body last changed, 0 = never. Dedupes the dirty log.
  std::uint64_t dirty_stamp = 0;
};

/// Non-owning view of a run of occurrence nodes (the result of
/// `occurrences_of()`). The nodes live in the grammar's flat occurrence
/// index; the span stays valid as long as the grammar does.
class NodeSpan {
 public:
  NodeSpan() = default;
  NodeSpan(Node* const* data, std::size_t size) : data_(data), size_(size) {}

  Node* const* begin() const { return data_; }
  Node* const* end() const { return data_ + size_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  Node* operator[](std::size_t i) const { return data_[i]; }

 private:
  Node* const* data_ = nullptr;
  std::size_t size_ = 0;
};

/// The grammar. Use `append()` to feed events (PYTHIA-RECORD), then
/// `finalize()` once before using it for prediction or serialization.
class Grammar {
 public:
  Grammar();
  ~Grammar();

  Grammar(const Grammar&) = delete;
  Grammar& operator=(const Grammar&) = delete;
  Grammar(Grammar&&) noexcept;
  Grammar& operator=(Grammar&&) noexcept;

  /// Appends one event to the represented sequence, maintaining the three
  /// invariants. Amortized O(1).
  void append(TerminalId event);

  const Rule* root() const { return root_; }
  Rule* root() { return root_; }

  /// Number of live rules, including the root (the paper's "# rules"
  /// counts the whole grammar).
  std::size_t rule_count() const { return live_rule_count_; }

  /// Total number of terminals in the represented sequence.
  std::uint64_t sequence_length() const { return appended_; }

  /// Reconstructs the full event sequence (testing / replay).
  std::vector<TerminalId> unfold() const;

  /// Aborts with a diagnostic if any of the three invariants is violated
  /// or the internal index is inconsistent. Used heavily by tests.
  void check_invariants() const;

  /// Pretty-prints in the paper's notation, e.g. "R -> a b^2 C".
  std::string to_text(const EventRegistry* registry = nullptr) const;

  /// Graphviz dot rendering of the rule graph (rules as boxes listing
  /// their bodies, edges for rule references) — for inspecting extracted
  /// program structure, like the paper's fig. 1.
  std::string to_dot(const EventRegistry* registry = nullptr) const;

  /// Freezes the grammar for prediction: assigns stable node ids, builds
  /// the terminal-occurrence index and per-rule trace-occurrence counts.
  /// Must be called after the last append; append() afterwards is an error.
  void finalize();
  bool finalized() const { return finalized_; }

  /// Occurrence nodes of a terminal (valid after finalize()). O(1): a
  /// dense-by-terminal span lookup into one flat array, no hashing.
  NodeSpan occurrences_of(TerminalId event) const;

  /// Relabels every terminal `t` as `old_to_new[t]` and rebuilds the
  /// occurrence index (finalized grammars only; structure, stable node
  /// ids and rule ids are untouched). Used by the harness to apply the
  /// registry's canonical renumbering to recorded grammars.
  void remap_terminals(const std::vector<TerminalId>& old_to_new);

  /// All live rules (valid any time; order: creation order, root first).
  std::vector<const Rule*> rules() const;

  /// Node with a given stable id (valid after finalize()).
  Node* node_by_stable_id(std::uint32_t id) const;
  std::size_t node_count() const { return stable_nodes_.size(); }

  /// Rule lookup by id; nullptr when dead/out of range.
  const Rule* rule_by_id(std::uint32_t id) const;
  Rule* rule_by_id(std::uint32_t id);

  /// Number of rule-id slots ever assigned (live rules + tombstones) —
  /// the exclusive upper bound for rule_by_id().
  std::size_t id_slot_count() const { return rules_.size(); }

  // --- Construction interface for deserialization and tests -------------
  // Builds a grammar directly from rule bodies. `bodies[i]` is the body of
  // rule i (rule 0 = root) as (symbol, exponent) pairs. Validates shape and
  // rebuilds the digram index; does not re-run reduction.
  struct BodyEntry {
    Symbol sym;
    std::uint64_t exp;
  };
  static Grammar from_bodies(const std::vector<std::vector<BodyEntry>>& bodies);

  // --- Dirty-rule epoch tracking (incremental finalize) -----------------
  // Opt-in: when enabled, every mutation that changes a rule body (create,
  // destroy, inline, digram splice, exponent change) stamps the touched
  // rule into a drain log, deduplicated per epoch. Off by default so the
  // steady-state append path stays allocation-free when unused
  // (tests/core/alloc_steady_state_test.cpp).
  void enable_dirty_tracking() { dirty_tracking_ = true; }
  bool dirty_tracking_enabled() const { return dirty_tracking_; }

  /// Appends the ids of every rule whose body changed since the epoch
  /// returned by the previous drain (`epoch` must be exactly that value;
  /// 0 for the first drain) and clears the log. Returns the new epoch.
  /// Drained ids may refer to rules that have since died (tombstoned
  /// slots) — consumers must tolerate both; ids are never reused, so an
  /// id identifies one rule struct lifetime.
  std::uint64_t drain_dirty_since(std::uint64_t epoch,
                                  std::vector<std::uint32_t>& out);

  /// Allocator-pool telemetry (trace_inspect, benches): how much of the
  /// node/rule pools is live vs. parked on the free lists.
  struct PoolStats {
    std::size_t nodes_allocated = 0;  ///< node structs ever created
    std::size_t nodes_free = 0;       ///< parked on the node free list
    std::size_t rules_allocated = 0;  ///< rule structs ever created
    std::size_t rules_live = 0;
    std::size_t rules_free = 0;       ///< parked on the rule free list
    std::size_t rule_ids = 0;         ///< id slots incl. tombstones
    std::size_t digram_count = 0;
    std::size_t digram_capacity = 0;
  };
  PoolStats pool_stats() const;

 private:
  // The incremental finalizer keeps a shadow copy of a live grammar in
  // sync via direct body surgery (core/incremental_finalize.cpp); it needs
  // the pools, the rule table and the finalize internals.
  friend class IncrementalFinalizer;

  Node* allocate_node(Symbol sym, std::uint64_t exp);
  void release_node(Node* node);
  void flush_pending_free();

  Rule* allocate_rule();
  void register_user(Node* node);
  void deregister_user(Node* node);

  void link_after(Rule* rule, Node* position, Node* node);
  void unlink(Node* node);

  void index_pair(Node* left);
  void unindex_pair(Node* left);
  Node* find_pair(Symbol a, Symbol b) const;

  void append_symbol(Rule* rule, Symbol sym, int depth);
  void raw_substitute(Node* left, Node* right, Rule* target,
                      std::uint64_t consumed_left);
  void ensure_adjacency(Node* left, int depth);
  void resolve_duplicate(Node* site, Node* canon, int depth);
  void mark_rule_dirty(Rule* rule);
  void process_dirty_rules();
  void inline_rule(Rule* rule);
  void destroy_rule(Rule* rule);
  void note_exp_decrease(Node* node);
  void stamp_dirty(Rule* rule);

  // --- Shadow-grammar surgery (IncrementalFinalizer) --------------------
  /// Creates a live empty rule bound to a *specific* id (slot must be
  /// empty; the table grows with nullptr tombstones as needed).
  Rule* create_rule_with_id(std::uint32_t id);
  /// Immediately retires a rule whose body and user list are already
  /// empty: tombstones the slot, parks the struct for reuse.
  void retire_rule(Rule* rule);
  /// Re-runs the finalize() products (occurrence counts, stable node ids,
  /// canonical user lists, occurrence index) over the current structure
  /// and rebuilds the digram index. Unlike finalize() it is callable
  /// repeatedly; used on shadow grammars kept in sync between publishes.
  void refinalize();
  /// Shared body of finalize()/refinalize().
  void finalize_impl();
  /// Rebuilds digrams_ from scratch (unique couple -> left node).
  void rebuild_digram_index();

  std::uint64_t count_occurrences(Rule* rule,
                                  std::vector<std::uint64_t>& memo,
                                  std::vector<int>& state) const;

  /// Rebuilds occurrence_nodes_/occurrence_spans_ from stable_nodes_
  /// (counting sort by terminal id; fill order = stable node order).
  void build_occurrence_index();

  std::deque<Node> node_pool_;
  std::vector<Node*> free_nodes_;
  std::vector<Node*> pending_free_;
  std::deque<Rule> rule_pool_;
  // By id. A slot holds nullptr once its rule struct has been recycled;
  // freshly dead rules keep their slot (alive == false) until the end of
  // the append so in-flight cascade frames never see a reused rule.
  std::vector<Rule*> rules_;
  std::vector<Rule*> free_rules_;
  std::vector<Rule*> pending_free_rules_;
  Rule* root_ = nullptr;
  std::size_t live_rule_count_ = 0;
  support::FlatMap<std::uint64_t, Node*> digrams_;
  std::vector<Rule*> dirty_rules_;
  std::uint64_t appended_ = 0;
  std::uint64_t ops_since_append_ = 0;
  bool finalized_ = false;

  // Dirty-rule epoch tracking (enable_dirty_tracking). dirty_epoch_ is
  // the epoch the *next* drain returns; stamps dedupe against it.
  bool dirty_tracking_ = false;
  std::uint64_t dirty_epoch_ = 1;
  std::vector<std::uint32_t> dirty_log_;

  // finalize() products: all terminal occurrence nodes in one flat array,
  // grouped by terminal id; spans_[t] = (offset, count) into it.
  std::vector<Node*> occurrence_nodes_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> occurrence_spans_;
  std::vector<Node*> stable_nodes_;
};

}  // namespace pythia
