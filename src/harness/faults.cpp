#include "harness/faults.hpp"

#include <cstddef>
#include <cstring>
#include <fstream>

#include "support/io.hpp"

namespace pythia::harness {

EventFaultInjector::EventFaultInjector(const FaultPlan& plan,
                                       SharedRegistry& registry,
                                       std::uint64_t salt)
    : plan_(plan),
      rng_(plan.seed ^ (salt * 0x9e3779b97f4a7c15ULL)),
      interner_(registry),
      fault_kind_(registry.kind("FAULT_INJECTED")) {}

void EventFaultInjector::operator()(TerminalId event,
                                    std::vector<TerminalId>& out) {
  ++stats_.submitted;
  if (holding_) {
    // Complete the swap: the successor goes first, then the held victim.
    out.push_back(event);
    out.push_back(held_);
    holding_ = false;
    ++stats_.reordered;
    stats_.delivered += 2;
    return;
  }
  if (plan_.drop_rate > 0.0 && rng_.chance(plan_.drop_rate)) {
    ++stats_.dropped;
    return;
  }
  if (plan_.reorder_rate > 0.0 && rng_.chance(plan_.reorder_rate)) {
    held_ = event;
    holding_ = true;  // delivered when the next event arrives
    return;
  }
  out.push_back(event);
  ++stats_.delivered;
  if (plan_.duplicate_rate > 0.0 && rng_.chance(plan_.duplicate_rate)) {
    out.push_back(event);
    ++stats_.duplicated;
    ++stats_.delivered;
  }
  if (plan_.inject_rate > 0.0 && rng_.chance(plan_.inject_rate)) {
    // A fresh aux every time keeps the event absent from any reference
    // grammar, so the oracle sees a genuinely unknown event.
    out.push_back(interner_.event(
        fault_kind_, static_cast<EventAux>(++injected_counter_)));
    ++stats_.injected;
    ++stats_.delivered;
  }
}

void EventFaultInjector::attach(Oracle& oracle) {
  oracle.set_event_filter(
      [this](TerminalId event, std::vector<TerminalId>& out) {
        (*this)(event, out);
      });
}

void corrupt_bytes(std::vector<std::uint8_t>& bytes, std::uint64_t seed,
                   int bit_flips) {
  if (bytes.empty()) return;
  support::Rng rng(seed);
  for (int i = 0; i < bit_flips; ++i) {
    const std::uint64_t bit = rng.below(bytes.size() * 8u);
    bytes[bit / 8u] ^= static_cast<std::uint8_t>(1u << (bit % 8u));
  }
}

Status corrupt_file(const std::string& path, std::uint64_t seed,
                    int bit_flips, double keep_fraction) {
  std::vector<std::uint8_t> bytes;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::io_error("cannot open " + path);
    in.seekg(0, std::ios::end);
    const std::streamoff size = in.tellg();
    in.seekg(0, std::ios::beg);
    bytes.resize(static_cast<std::size_t>(size));
    if (size > 0 &&
        !in.read(reinterpret_cast<char*>(bytes.data()), size)) {
      return Status::io_error("cannot read " + path);
    }
  }
  if (keep_fraction < 1.0) {
    const auto keep = static_cast<std::size_t>(
        static_cast<double>(bytes.size()) * keep_fraction);
    bytes.resize(keep);
  }
  corrupt_bytes(bytes, seed, bit_flips);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::io_error("cannot open " + path + " for write");
  if (!bytes.empty() &&
      !out.write(reinterpret_cast<const char*>(bytes.data()),
                 static_cast<std::streamsize>(bytes.size()))) {
    return Status::io_error("cannot write " + path);
  }
  return Status();
}

Status truncate_file(const std::string& path, std::uint64_t size) {
  const int fd = support::open_noeintr(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) return support::errno_status("open", path);
  int rc;
  do {
    rc = ::ftruncate(fd, static_cast<off_t>(size));
  } while (rc != 0 && errno == EINTR);
  Status status = rc == 0 ? Status() : support::errno_status("ftruncate", path);
  if (support::close_noeintr(fd) != 0 && status.ok()) {
    status = support::errno_status("close", path);
  }
  return status;
}

Status duplicate_file_range(const std::string& path, std::uint64_t src_offset,
                            std::uint64_t size, std::uint64_t dst_offset) {
  std::vector<unsigned char> bytes;
  Status status = support::read_file(path, bytes);
  if (!status.ok()) return status;
  if (src_offset + size > bytes.size()) {
    return Status::invalid_state("duplicate_file_range: source range [" +
                                 std::to_string(src_offset) + ", " +
                                 std::to_string(src_offset + size) +
                                 ") exceeds file size " +
                                 std::to_string(bytes.size()));
  }
  if (dst_offset + size > bytes.size()) bytes.resize(dst_offset + size);
  std::memmove(bytes.data() + dst_offset, bytes.data() + src_offset,
               static_cast<std::size_t>(size));
  return support::write_file(path, bytes.data(), bytes.size());
}

}  // namespace pythia::harness
