// Experiment runner: executes one application under one oracle mode on
// the simulated cluster and collects everything the paper's evaluation
// reports (wall time, virtual time, event counts, grammar sizes,
// predictor statistics, OpenMP team statistics).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "core/online_oracle.hpp"
#include "core/trace_io.hpp"
#include "engine/record_engine.hpp"
#include "harness/faults.hpp"
#include "iosim/prefetcher.hpp"
#include "mpisim/cluster.hpp"
#include "mpisim/guided_comm.hpp"
#include "ompsim/runtime.hpp"

namespace pythia::harness {

enum class Mode { kVanilla, kRecord, kPredict, kOnline };

inline const char* to_string(Mode mode) {
  switch (mode) {
    case Mode::kVanilla:
      return "vanilla";
    case Mode::kRecord:
      return "pythia-record";
    case Mode::kPredict:
      return "pythia-predict";
    case Mode::kOnline:
      return "pythia-online";
  }
  return "?";
}

/// Which consumer a rank's isends route through (GuidedComm). The MPI
/// send-path consumers check the oracle's serving()/degraded() gates
/// themselves, so any path under a withheld or tripped oracle behaves
/// like kDirect.
enum class SendPath { kDirect, kAggregate, kPersistent };

/// Optional prediction-guided I/O runtime per rank: a BlockStore +
/// PrefetchingReader sharing the rank's virtual clock, handed to apps via
/// RankEnv::io. Apps that never touch env.io are unaffected.
struct IoConfig {
  bool enabled = false;
  iosim::BlockStore::Config store;
  iosim::PrefetchingReader::Config reader;
};

struct RunConfig {
  Mode mode = Mode::kVanilla;
  apps::AppConfig app;
  int ranks = 0;  ///< 0 = App::default_ranks()

  /// Fraction of virtual compute burned as real CPU (Table I overhead
  /// runs measure real wall-clock; everything else can leave this 0).
  double real_work_fraction = 0.0;
  bool record_timestamps = true;

  /// Record mode: shard the grammar reduction onto the parallel engine.
  /// Each rank's sim thread only enqueues into its SPSC ring; a dedicated
  /// engine worker per rank owns that rank's Recorder. Per-rank event
  /// order is preserved end to end, so the recorded trace is byte-
  /// identical to a sequential (in-line) recording of the same run —
  /// asserted by tests/engine/record_engine_test via the trace digest.
  /// Ignored outside record mode (predict ranks already run concurrently
  /// over the shared reference trace).
  bool parallel_ranks = false;

  /// Ring sizing/backpressure for parallel_ranks. `record_timestamps`
  /// inside is overridden by the RunConfig field above; the backpressure
  /// default (kBlock) is what keeps parallel record lossless and
  /// deterministic — kDropNewest trades trace fidelity for never
  /// stalling the simulated application.
  engine::RingOptions engine_ring;

  /// Reference trace; required in predict mode. Must have one thread
  /// section per rank unless wrap_reference_threads is set. Sections that
  /// were salvaged during loading (Trace::thread_ok false) degrade their
  /// rank to Mode::kOff — that rank runs vanilla; the others still
  /// predict.
  const Trace* reference = nullptr;

  /// Arm the divergence circuit breaker on predict-mode oracles (see
  /// Predictor::Options::Breaker). On by default: a runtime system must
  /// not keep paying re-anchor costs — or acting on stale predictions —
  /// once the execution stops matching the reference.
  bool breaker = true;

  /// Event-stream fault injection (EventFaultInjector), applied to every
  /// rank's oracle with the plan's seed salted by rank. Inactive rates
  /// leave the stream untouched.
  FaultPlan faults;

  /// Cross-configuration prediction (extension of the paper's future
  /// work): rank r uses reference section r mod |sections|, so a trace
  /// recorded with P processes can guide a run with P' processes.
  bool wrap_reference_threads = false;

  /// Online mode (Mode::kOnline): learn-while-running options per rank.
  /// With `breaker` false the snapshot predictors run breaker-less (test
  /// configurations only). No reference trace is consulted.
  OnlineOracle::Options online;

  /// Online mode: when non-empty, each rank journals into
  /// `<online_session_dir>/rank-<r>` (crash-safe; reopening the same dir
  /// recovers and resumes the ramp). A rank whose session fails to open
  /// degrades to vanilla and counts in ranks_salvaged.
  std::string online_session_dir;
  SessionOptions online_session;

  /// isend routing (predict/online consumers; see SendPath).
  SendPath send_path = SendPath::kDirect;

  /// Prediction-guided I/O runtime (RankEnv::io).
  IoConfig io;

  /// Peer-rank payload encoding in MPI events. kRelative makes traces
  /// transferable across process counts (see bench/ext_config_transfer).
  mpisim::PeerEncoding peer_encoding = mpisim::PeerEncoding::kAbsolute;

  // OpenMP runtime setup (hybrid apps).
  ompsim::MachineModel machine = ompsim::MachineModel::paravance();
  int omp_max_threads = 8;
  bool omp_adaptive = false;  ///< adaptive teams (predict mode)
  bool omp_park = true;       ///< the paper's pool modification
  double omp_error_rate = 0.0;  ///< fig. 14 fault injection

  /// Per-rank observer factory (accuracy / cost probes). The observer is
  /// also given the rank's oracle so it can hook the event stream.
  std::function<std::unique_ptr<mpisim::CommObserver>(int, Oracle&)>
      observer_factory;
};

struct RunResult {
  /// Recorded trace (record mode only; empty otherwise).
  Trace trace;
  std::uint64_t makespan_virtual_ns = 0;
  double wall_seconds = 0.0;
  std::uint64_t total_events = 0;
  double mean_rules = 0.0;        ///< record mode: average grammar size
  std::size_t max_rules = 0;
  Predictor::Stats predictor_stats;  ///< predict mode: summed over ranks
  ompsim::OmpRuntime::Stats omp_stats;  ///< hybrid apps: summed over ranks

  // Resilience telemetry.
  std::size_t ranks_degraded = 0;  ///< breaker not healthy at run end
  std::size_t ranks_salvaged = 0;  ///< damaged reference section -> off
  double min_confidence = 1.0;     ///< worst end-of-run rank confidence
  EventFaultInjector::Stats fault_stats;  ///< summed over ranks

  // Online-mode telemetry (Mode::kOnline; zero otherwise).
  OnlineOracle::Stats online_stats;  ///< summed over ranks
  std::size_t ranks_serving = 0;     ///< ramp serving at run end
  /// Rank 0's ramp curve (Options::history_every samples; empty when
  /// sampling is off). Powers bench/online's mid-run accuracy figures.
  std::vector<OnlineOracle::RampSample> online_history;

  // Consumer telemetry (send_path / io; zero when not enabled).
  mpisim::SendAggregator::Stats aggregator_stats;
  mpisim::PersistentSendOptimizer::Stats persistent_stats;
  iosim::BlockStore::Stats io_stats;
  std::uint64_t io_prefetches = 0;

  /// Engine telemetry (record mode with parallel_ranks; zero otherwise).
  /// dropped stays 0 under the default kBlock backpressure.
  engine::RecordEngine::ShardStats engine_stats;

  double makespan_seconds() const {
    return static_cast<double>(makespan_virtual_ns) * 1e-9;
  }
};

/// Runs `app` once under `config`. In predict mode the registry is copied
/// from the reference trace so terminal ids stay consistent.
RunResult run_app(const apps::App& app, const RunConfig& config);

/// Convenience: record a reference trace of `app` (timestamps on).
Trace record_reference(const apps::App& app, apps::AppConfig app_config,
                       int ranks = 0);

}  // namespace pythia::harness
