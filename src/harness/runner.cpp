#include "harness/runner.hpp"

#include <algorithm>
#include <mutex>

#include "support/assert.hpp"

namespace pythia::harness {

RunResult run_app(const apps::App& app, const RunConfig& config) {
  const int ranks = config.ranks > 0 ? config.ranks : app.default_ranks();
  PYTHIA_ASSERT_MSG(
      config.mode != Mode::kPredict ||
          (config.reference != nullptr &&
           !config.reference->threads.empty() &&
           (config.wrap_reference_threads ||
            config.reference->threads.size() ==
                static_cast<std::size_t>(ranks))),
      "predict mode needs a reference trace with one section per rank");

  RunResult result;
  // Registry: fresh for vanilla/record, copied from the reference for
  // predict (same (kind, aux) -> same terminal id as the recording run).
  if (config.mode == Mode::kPredict) {
    result.trace.registry = config.reference->registry;
  }
  SharedRegistry shared(result.trace.registry);

  mpisim::Cluster::Options cluster_options;
  cluster_options.real_work_fraction = config.real_work_fraction;
  mpisim::Cluster cluster(ranks, cluster_options);

  // Parallel record: one engine shard (SPSC ring + recorder worker) per
  // rank; the rank's sim thread pays only the enqueue.
  std::unique_ptr<engine::RecordEngine> record_engine;
  if (config.mode == Mode::kRecord && config.parallel_ranks) {
    engine::RingOptions ring = config.engine_ring;
    ring.record_timestamps = config.record_timestamps;
    record_engine = std::make_unique<engine::RecordEngine>(
        static_cast<std::size_t>(ranks), ring);
  }

  std::vector<ThreadTrace> recorded(static_cast<std::size_t>(ranks));
  std::mutex aggregate_mutex;

  const mpisim::Cluster::Result cluster_result =
      cluster.run([&](mpisim::Communicator& comm) {
        const auto rank = static_cast<std::size_t>(comm.rank());

        bool salvaged_off = false;
        Oracle oracle = [&] {
          switch (config.mode) {
            case Mode::kVanilla:
              return Oracle::off();
            case Mode::kRecord:
              if (record_engine != nullptr) {
                return Oracle::record_into(record_engine->producer(rank));
              }
              return Oracle::record(config.record_timestamps);
            case Mode::kOnline: {
              OnlineOracle::Options online = config.online;
              if (!config.breaker) {
                online.predictor = Predictor::Options{};
              }
              if (config.online_session_dir.empty()) {
                return Oracle::online(online);
              }
              const std::string dir = config.online_session_dir + "/rank-" +
                                      std::to_string(rank);
              Result<Oracle> opened =
                  Oracle::online_in(dir, online, config.online_session);
              if (!opened.ok()) {
                // Graceful degradation: a rank whose journal directory is
                // unusable runs vanilla; the others still learn.
                salvaged_off = true;
                return Oracle::off();
              }
              return opened.take();
            }
            case Mode::kPredict: {
              const std::size_t section =
                  config.wrap_reference_threads
                      ? rank % config.reference->threads.size()
                      : rank;
              if (!config.reference->thread_ok(section)) {
                // The reference section for this rank was salvaged (its
                // checksum or structure failed during try_load): graceful
                // degradation — this rank runs vanilla.
                salvaged_off = true;
                return Oracle::off();
              }
              return Oracle::predict(config.reference->threads[section],
                                     config.breaker
                                         ? Predictor::Options::runtime_defaults()
                                         : Predictor::Options{});
            }
          }
          return Oracle::off();
        }();

        if (oracle.online_oracle() != nullptr && oracle.online_oracle()->session() != nullptr) {
          // Session-backed online rank: ids intern first into the
          // process-wide shared registry; copy new entries into the
          // session (journaled, dense order) before events use them.
          oracle.online_oracle()->set_registry_sync([&shared](RecordSession& session) {
            return shared.with_registry([&session](const EventRegistry& src) {
              return session.import_registry(src);
            });
          });
        }

        std::unique_ptr<EventFaultInjector> injector;
        if (config.faults.active()) {
          injector = std::make_unique<EventFaultInjector>(
              config.faults, shared, static_cast<std::uint64_t>(rank));
          injector->attach(oracle);
        }

        std::unique_ptr<mpisim::CommObserver> observer;
        if (config.observer_factory) {
          observer = config.observer_factory(comm.rank(), oracle);
        }

        mpisim::GuidedComm mpi(comm, oracle, shared, observer.get(),
                               config.peer_encoding);
        switch (config.send_path) {
          case SendPath::kDirect:
            break;
          case SendPath::kAggregate:
            mpi.enable_aggregation();
            break;
          case SendPath::kPersistent:
            mpi.enable_persistent();
            break;
        }

        std::unique_ptr<ompsim::OmpRuntime> omp;
        if (app.hybrid()) {
          ompsim::OmpRuntime::Config omp_config;
          omp_config.machine = config.machine;
          omp_config.max_threads = config.omp_max_threads;
          omp_config.park_spurious = config.omp_park;
          omp_config.adaptive = (config.mode == Mode::kPredict ||
                                 config.mode == Mode::kOnline) &&
                                config.omp_adaptive;
          omp_config.real_work_fraction = config.real_work_fraction;
          omp_config.error_rate =
              config.mode == Mode::kPredict ? config.omp_error_rate : 0.0;
          omp_config.error_seed =
              config.app.seed * 7919u + static_cast<std::uint64_t>(rank);
          omp = std::make_unique<ompsim::OmpRuntime>(omp_config, comm.clock(),
                                                     oracle, shared);
        }

        std::unique_ptr<iosim::BlockStore> io_store;
        std::unique_ptr<iosim::PrefetchingReader> io_reader;
        if (config.io.enabled) {
          io_store = std::make_unique<iosim::BlockStore>(config.io.store);
          io_reader = std::make_unique<iosim::PrefetchingReader>(
              *io_store, comm.clock(), oracle, shared, config.io.reader);
        }

        apps::RankEnv env{
            .mpi = mpi,
            .omp = omp.get(),
            .io = io_reader.get(),
            .rng = support::Rng(config.app.seed * 1000000007ULL +
                                static_cast<std::uint64_t>(rank)),
        };
        app.run_rank(env, config.app);
        mpi.sync();  // deliver any consumer-buffered sends

        // Aggregate per-rank outputs.
        std::lock_guard lock(aggregate_mutex);
        result.total_events += mpi.events_submitted();
        if (omp != nullptr) {
          const auto& s = omp->stats();
          result.total_events += s.regions * 2;  // begin/end events
          result.omp_stats.regions += s.regions;
          result.omp_stats.threads_used_total += s.threads_used_total;
          result.omp_stats.adaptive_decisions += s.adaptive_decisions;
          result.omp_stats.fallback_decisions += s.fallback_decisions;
          result.omp_stats.degraded_decisions += s.degraded_decisions;
          result.omp_stats.pool_cost_ns += s.pool_cost_ns;
          result.omp_stats.region_time_ns += s.region_time_ns;
        }
        if (injector != nullptr) {
          const EventFaultInjector::Stats& f = injector->stats();
          result.fault_stats.submitted += f.submitted;
          result.fault_stats.delivered += f.delivered;
          result.fault_stats.dropped += f.dropped;
          result.fault_stats.duplicated += f.duplicated;
          result.fault_stats.reordered += f.reordered;
          result.fault_stats.injected += f.injected;
        }
        if (salvaged_off) ++result.ranks_salvaged;
        if (const auto* agg = mpi.aggregator_stats()) {
          result.aggregator_stats.sends += agg->sends;
          result.aggregator_stats.batched += agg->batched;
          result.aggregator_stats.batches += agg->batches;
          result.aggregator_stats.flushes += agg->flushes;
          result.aggregator_stats.latency_saved += agg->latency_saved;
          result.aggregator_stats.degraded_sends += agg->degraded_sends;
        }
        if (const auto* persistent = mpi.persistent_stats()) {
          result.persistent_stats.sends += persistent->sends;
          result.persistent_stats.channels += persistent->channels;
          result.persistent_stats.persistent_sends +=
              persistent->persistent_sends;
        }
        if (io_store != nullptr) {
          const iosim::BlockStore::Stats& io = io_store->stats();
          result.total_events += io.reads;  // one block_read event per read
          result.io_stats.reads += io.reads;
          result.io_stats.hits += io.hits;
          result.io_stats.late_prefetches += io.late_prefetches;
          result.io_stats.misses += io.misses;
          result.io_stats.prefetches += io.prefetches;
          result.io_stats.redundant_prefetches += io.redundant_prefetches;
          result.io_prefetches += io_reader->prefetches_issued();
        }
        if (config.mode == Mode::kOnline && oracle.online_oracle() != nullptr) {
          const OnlineOracle& online = *oracle.online_oracle();
          const OnlineOracle::Stats& s = online.stats();
          result.online_stats.events += s.events;
          result.online_stats.snapshots += s.snapshots;
          result.online_stats.scored += s.scored;
          result.online_stats.hits += s.hits;
          result.online_stats.served_events += s.served_events;
          result.online_stats.withheld_events += s.withheld_events;
          result.online_stats.ramp_trips += s.ramp_trips;
          result.online_stats.first_served_event =
              std::max(result.online_stats.first_served_event,
                       s.first_served_event);
          if (online.serving()) ++result.ranks_serving;
          if (rank == 0) result.online_history = online.history();
          if (oracle.degraded()) ++result.ranks_degraded;
          result.min_confidence =
              std::min(result.min_confidence, online.confidence());
          const Predictor::Stats& p = online.predictor_stats();
          result.predictor_stats.observed += p.observed;
          result.predictor_stats.advanced += p.advanced;
          result.predictor_stats.reanchored += p.reanchored;
          result.predictor_stats.unknown += p.unknown;
          result.predictor_stats.anchors += p.anchors;
          result.predictor_stats.anchors_suppressed += p.anchors_suppressed;
          // The learned grammar is collected like a recording's (and, when
          // session-backed, finish() also writes <dir>/trace.pythia).
          recorded[rank] = oracle.finish();
        }
        if (config.mode == Mode::kRecord) {
          // Engine mode: the shard's worker owns the recorder; traces are
          // collected at the finalize barrier after the cluster joins.
          if (record_engine == nullptr) recorded[rank] = oracle.finish();
        } else if (oracle.predicting()) {
          const Predictor::Stats& s = oracle.predictor_stats();
          result.predictor_stats.observed += s.observed;
          result.predictor_stats.advanced += s.advanced;
          result.predictor_stats.reanchored += s.reanchored;
          result.predictor_stats.unknown += s.unknown;
          result.predictor_stats.anchors += s.anchors;
          result.predictor_stats.anchors_suppressed += s.anchors_suppressed;
          if (oracle.degraded()) ++result.ranks_degraded;
          result.min_confidence =
              std::min(result.min_confidence, oracle.confidence());
        }
      });

  result.makespan_virtual_ns = cluster_result.makespan_virtual_ns;
  result.wall_seconds = cluster_result.wall_seconds;

  if (config.mode == Mode::kRecord && record_engine != nullptr) {
    // Drain/finalize barrier: every enqueued event is applied, workers
    // stop, and each shard's grammar finalizes + replays its timing log.
    recorded = record_engine->finish();
    result.engine_stats = record_engine->totals();
  }

  if (config.mode == Mode::kRecord || config.mode == Mode::kOnline) {
    // Canonical id normalization: ranks intern events first-come, so raw
    // terminal ids depend on thread scheduling and a recorded trace would
    // not be reproducible run to run (nor parallel vs. sequential).
    // Renumber events by (kind name, aux) and relabel every grammar to
    // match — Sequitur is equivariant under terminal renaming and timing
    // keys use stable node ids, so only the labels change.
    const std::vector<TerminalId> remap = result.trace.registry.canonicalize();
    for (ThreadTrace& thread : recorded) {
      // A salvaged online rank ran without an oracle and left its slot
      // default-constructed: give it an empty finalized section so the
      // trace still has one section per rank.
      if (!thread.grammar.finalized()) thread.grammar.finalize();
      thread.grammar.remap_terminals(remap);
    }

    std::size_t total_rules = 0;
    for (ThreadTrace& thread : recorded) {
      const std::size_t rules = thread.grammar.rule_count();
      total_rules += rules;
      result.max_rules = std::max(result.max_rules, rules);
      result.trace.threads.push_back(std::move(thread));
    }
    result.mean_rules =
        static_cast<double>(total_rules) / static_cast<double>(ranks);
  }
  return result;
}

Trace record_reference(const apps::App& app, apps::AppConfig app_config,
                       int ranks) {
  RunConfig config;
  config.mode = Mode::kRecord;
  config.app = app_config;
  config.ranks = ranks;
  RunResult result = run_app(app, config);
  return std::move(result.trace);
}

}  // namespace pythia::harness
