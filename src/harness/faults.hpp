// General fault-injection harness for resilience experiments.
//
// Three orthogonal perturbation surfaces, all seeded and bit-reproducible:
//
//  * the *event stream* an oracle observes — EventFaultInjector plugs
//    into Oracle::set_event_filter and models a lossy instrumentation
//    channel (dropped probes, duplicated probes, swapped neighbours,
//    spurious events unknown to the reference grammar). The application's
//    actual behaviour is untouched; only the oracle's view degrades.
//
//  * the *trace file* on disk — corrupt_file/corrupt_bytes flip random
//    bits or truncate, and truncate_file/duplicate_file_range perform the
//    surgical edits the journal tests need (torn tails, cloned segments),
//    exercising the PYTHIA02 checksum + salvage paths (Trace::try_load)
//    and the journal's longest-valid-prefix scan (scan_journal).
//
//  * the *process itself* — the kill-point API (re-exported here from
//    support/crash_point.hpp, where the instrumented core code lives
//    below the harness layer) crashes the process, or throws into the
//    test, at named durability boundaries inside the journal and
//    checkpoint writers.
//
// bench/ext_degradation.cpp sweeps event-fault rates to show that the
// divergence circuit breaker keeps predict-mode virtual time at vanilla
// level no matter how hostile the stream gets.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/event.hpp"
#include "core/oracle.hpp"
#include "core/shared_registry.hpp"
#include "faults/plan.hpp"
#include "support/crash_point.hpp"
#include "support/rng.hpp"
#include "support/status.hpp"

namespace pythia::harness {

// Kill-point fault injection (see support/crash_point.hpp for the
// mechanism and the list of instrumented sites).
using support::CrashAction;
using support::CrashPointHit;
using support::arm_crash_point;
using support::arm_crash_point_from_env;
using support::crash_point_armed;
using support::disarm_crash_points;

/// The perturbation knobs moved to faults::Plan (src/faults/plan.hpp) so
/// the serve soak drivers and harness::run_app share one configuration
/// surface; the historical harness name remains valid.
using FaultPlan = faults::Plan;

/// Oracle::EventFilter implementation. Install with attach(); the
/// injector must outlive the oracle session it is attached to.
class EventFaultInjector {
 public:
  struct Stats {
    std::uint64_t submitted = 0;   ///< events offered by the runtime
    std::uint64_t delivered = 0;   ///< events the oracle observed
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t reordered = 0;   ///< swapped pairs
    std::uint64_t injected = 0;    ///< spurious unknown events
  };

  /// `salt` decorrelates streams that share a plan (e.g. one per rank).
  EventFaultInjector(const FaultPlan& plan, SharedRegistry& registry,
                     std::uint64_t salt = 0);

  /// The filter itself: turns one submitted event into 0..3 observed ones.
  void operator()(TerminalId event, std::vector<TerminalId>& out);

  void attach(Oracle& oracle);

  const Stats& stats() const { return stats_; }

 private:
  FaultPlan plan_;
  support::Rng rng_;
  CachedInterner interner_;
  KindId fault_kind_;
  std::uint64_t injected_counter_ = 0;
  bool holding_ = false;   ///< a reorder victim awaits its successor
  TerminalId held_ = 0;
  Stats stats_;
};

/// Flips `bit_flips` uniformly chosen bits in `bytes` (deterministic in
/// `seed`). No-op on an empty buffer.
void corrupt_bytes(std::vector<std::uint8_t>& bytes, std::uint64_t seed,
                   int bit_flips);

/// Corrupts the file at `path` in place: first truncates it to
/// `keep_fraction` of its size (1.0 = no truncation), then flips
/// `bit_flips` random bits in what remains. Deterministic in `seed`.
Status corrupt_file(const std::string& path, std::uint64_t seed,
                    int bit_flips, double keep_fraction = 1.0);

/// Truncates `path` to exactly `size` bytes — a surgical torn tail
/// (corrupt_file's keep_fraction is proportional, this one is exact).
Status truncate_file(const std::string& path, std::uint64_t size);

/// Copies `size` bytes from `src_offset` over `dst_offset` in place,
/// extending the file if needed — forges a duplicated/relocated journal
/// segment. The source range must lie inside the file.
Status duplicate_file_range(const std::string& path, std::uint64_t src_offset,
                            std::uint64_t size, std::uint64_t dst_offset);

}  // namespace pythia::harness
