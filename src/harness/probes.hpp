// Measurement probes attached to the instrumented runtimes.
//
// AccuracyProbe (fig. 8): at every blocking MPI call, ask PYTHIA which
// event will occur in x events, for several x; score each prediction when
// the event at that index actually happens.
//
// CostProbe (fig. 9): at every blocking MPI call, time (real nanoseconds)
// how long a prediction at distance x takes.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "core/oracle.hpp"
#include "mpisim/instrumented_comm.hpp"
#include "support/stats.hpp"

namespace pythia::harness {

class AccuracyProbe : public mpisim::CommObserver {
 public:
  struct Tally {
    std::uint64_t asked = 0;
    std::uint64_t correct = 0;
    std::uint64_t incorrect = 0;
    std::uint64_t unanswered = 0;  ///< oracle had no candidate

    /// The paper's success rate; an unanswered request counts against
    /// the oracle (it could not help the runtime).
    double accuracy() const {
      return asked > 0
                 ? static_cast<double>(correct) / static_cast<double>(asked)
                 : 0.0;
    }

    /// Success rate among predictions the oracle actually made (the
    /// paper's correct-vs-incorrect count, fig. 8). Predictions whose
    /// target index lies past the end of the run stay unscored.
    double answered_accuracy() const {
      const std::uint64_t scored = correct + incorrect;
      return scored > 0
                 ? static_cast<double>(correct) / static_cast<double>(scored)
                 : 0.0;
    }
  };

  AccuracyProbe(Oracle& oracle, std::vector<std::size_t> distances)
      : oracle_(oracle), distances_(std::move(distances)) {
    oracle_.set_event_hook([this](TerminalId event, std::uint64_t) {
      note_event(event);
    });
  }

  void on_sync_point(std::uint64_t) override {
    for (const std::size_t distance : distances_) {
      Tally& tally = tallies_[distance];
      ++tally.asked;
      const auto prediction = oracle_.predict_event(distance);
      if (!prediction.has_value()) {
        ++tally.unanswered;
        continue;
      }
      pending_.emplace(event_index_ + distance,
                       Pending{distance, prediction->event});
    }
  }

  const std::map<std::size_t, Tally>& tallies() const { return tallies_; }

  /// Merges another probe's results (per-rank aggregation).
  void merge_into(std::map<std::size_t, Tally>& out) const {
    for (const auto& [distance, tally] : tallies_) {
      Tally& target = out[distance];
      target.asked += tally.asked;
      target.correct += tally.correct;
      target.incorrect += tally.incorrect;
      target.unanswered += tally.unanswered;
    }
  }

 private:
  void note_event(TerminalId event) {
    ++event_index_;
    auto it = pending_.begin();
    while (it != pending_.end() && it->first <= event_index_) {
      Tally& tally = tallies_[it->second.distance];
      if (it->first == event_index_ && it->second.predicted == event) {
        ++tally.correct;
      } else {
        ++tally.incorrect;
      }
      it = pending_.erase(it);
    }
  }

  struct Pending {
    std::size_t distance;
    TerminalId predicted;
  };

  Oracle& oracle_;
  std::vector<std::size_t> distances_;
  std::uint64_t event_index_ = 0;
  std::multimap<std::uint64_t, Pending> pending_;
  std::map<std::size_t, Tally> tallies_;
};

class CostProbe : public mpisim::CommObserver {
 public:
  CostProbe(Oracle& oracle, std::vector<std::size_t> distances)
      : oracle_(oracle), distances_(std::move(distances)) {}

  void on_sync_point(std::uint64_t) override {
    using clock = std::chrono::steady_clock;
    for (const std::size_t distance : distances_) {
      const auto start = clock::now();
      (void)oracle_.predict_event(distance);
      const auto stop = clock::now();
      costs_[distance].add(
          std::chrono::duration<double, std::nano>(stop - start).count());
    }
  }

  const std::map<std::size_t, support::RunningStat>& costs() const {
    return costs_;
  }

  void merge_into(std::map<std::size_t, support::RunningStat>& out) const {
    for (const auto& [distance, stat] : costs_) out[distance].merge(stat);
  }

 private:
  Oracle& oracle_;
  std::vector<std::size_t> distances_;
  std::map<std::size_t, support::RunningStat> costs_;
};

}  // namespace pythia::harness
