#include "engine/snapshot.hpp"

#include "support/assert.hpp"
#include "support/hash.hpp"

namespace pythia::engine {

TraceSnapshot::TraceSnapshot(Trace&& trace, std::uint64_t version)
    : trace_(std::move(trace)), version_(version) {
  for (std::size_t i = 0; i < trace_.threads.size(); ++i) {
    if (trace_.thread_ok(i)) {
      PYTHIA_ASSERT_MSG(trace_.threads[i].grammar.finalized(),
                        "TraceSnapshot needs finalized grammars");
    }
  }
  digest_ = trace_digest(trace_);
}

TraceSnapshot::TraceSnapshot(Trace&& trace, support::MappedFile&& mapped,
                             std::uint64_t version)
    : trace_(std::move(trace)),
      mapped_file_(std::move(mapped)),
      version_(version) {
  // Mapped snapshots never decode thread payloads, so the digest is built
  // from what the compiled sections certify about them instead.
  digest_ = 0x5a707943u;  // arbitrary mode tag: "ZpyC"
  for (const ThreadTrace& thread : trace_.threads) {
    digest_ = support::hash_combine(
        digest_, thread.compiled.valid() ? thread.compiled.grammar_digest()
                                         : 0);
  }
}

std::shared_ptr<const TraceSnapshot> TraceSnapshot::make(
    Trace trace, std::uint64_t version) {
  return std::shared_ptr<const TraceSnapshot>(
      new TraceSnapshot(std::move(trace), version));
}

Result<std::shared_ptr<const TraceSnapshot>> TraceSnapshot::load(
    const std::string& path, std::uint64_t version) {
  Result<Trace> loaded = Trace::try_load(path);
  if (!loaded.ok()) return loaded.status();
  return make(loaded.take(), version);
}

Result<std::shared_ptr<const TraceSnapshot>> TraceSnapshot::load_mapped(
    const std::string& path, std::uint64_t version) {
  Result<support::MappedFile> mapped = support::MappedFile::open(path);
  if (!mapped.ok()) return mapped.status();
  support::MappedFile file = mapped.take();
  Result<Trace> loaded = load_trace_zero_copy(file.data(), file.size());
  if (!loaded.ok()) return loaded.status();
  Trace trace = loaded.take();
  bool any_compiled = false;
  for (const ThreadTrace& thread : trace.threads) {
    any_compiled = any_compiled || thread.compiled.valid();
  }
  if (!any_compiled) {
    // Nothing servable in place (legacy file, or every compiled section
    // damaged) — tell the caller to take the deserializing path rather
    // than publishing a snapshot no session can open.
    return Status::invalid_state(
        "mapped load: no usable compiled section in '" + path + "'");
  }
  return std::shared_ptr<const TraceSnapshot>(
      new TraceSnapshot(std::move(trace), std::move(file), version));
}

PredictSession::PredictSession(std::shared_ptr<const TraceSnapshot> snapshot,
                               std::size_t section,
                               const Predictor::Options& options)
    : snapshot_(std::move(snapshot)), section_(section) {
  const ThreadTrace& thread = snapshot_->section(section_);
  if (thread.compiled.valid()) {
    compiled_ = std::make_unique<CompiledPredictor>(thread.compiled, options);
  } else {
    predictor_ = std::make_unique<Predictor>(
        thread.grammar, thread.timing.empty() ? nullptr : &thread.timing,
        options);
  }
}

Status publish_compiled(PredictServer& server, DeltaCompiler& compiler,
                        const Grammar& grammar, const TimingModel* timing,
                        std::uint64_t grammar_digest, std::uint64_t version) {
  std::vector<unsigned char> blob =
      compiler.compile(grammar, timing, grammar_digest);
  if (blob.empty()) {
    return Status::invalid_state(
        "publish_compiled: grammar is not compilable");
  }
  Trace trace;
  trace.threads.emplace_back();
  ThreadTrace& thread = trace.threads.back();
  thread.compiled_blob = std::move(blob);
  Result<CompiledView> view = CompiledView::parse(
      thread.compiled_blob.data(), thread.compiled_blob.size());
  if (!view.ok()) return view.status();
  thread.compiled = view.take();
  // Placeholder only: PredictSession always picks the compiled automaton
  // when the view is valid, and TraceSnapshot::make requires finalized
  // grammars for OK sections.
  thread.grammar.finalize();
  server.publish(TraceSnapshot::make(std::move(trace), version));
  return Status();
}

Result<PredictSession> PredictServer::open(
    std::size_t section, const Predictor::Options& options) const {
  std::shared_ptr<const TraceSnapshot> snapshot = this->snapshot();
  if (snapshot == nullptr) {
    return Status::invalid_state("predict server: nothing published");
  }
  if (section >= snapshot->sections()) {
    return Status::invalid_state("predict server: section " +
                                 std::to_string(section) + " out of range");
  }
  if (!snapshot->section_ok(section)) {
    return Status::corrupt("predict server: section " +
                           std::to_string(section) +
                           " was salvaged; cannot serve predictions");
  }
  return PredictSession(std::move(snapshot), section, options);
}

}  // namespace pythia::engine
