#include "engine/snapshot.hpp"

#include "support/assert.hpp"

namespace pythia::engine {

TraceSnapshot::TraceSnapshot(Trace&& trace, std::uint64_t version)
    : trace_(std::move(trace)), version_(version) {
  for (std::size_t i = 0; i < trace_.threads.size(); ++i) {
    if (trace_.thread_ok(i)) {
      PYTHIA_ASSERT_MSG(trace_.threads[i].grammar.finalized(),
                        "TraceSnapshot needs finalized grammars");
    }
  }
  digest_ = trace_digest(trace_);
}

std::shared_ptr<const TraceSnapshot> TraceSnapshot::make(
    Trace trace, std::uint64_t version) {
  return std::shared_ptr<const TraceSnapshot>(
      new TraceSnapshot(std::move(trace), version));
}

Result<std::shared_ptr<const TraceSnapshot>> TraceSnapshot::load(
    const std::string& path, std::uint64_t version) {
  Result<Trace> loaded = Trace::try_load(path);
  if (!loaded.ok()) return loaded.status();
  return make(loaded.take(), version);
}

PredictSession::PredictSession(std::shared_ptr<const TraceSnapshot> snapshot,
                               std::size_t section,
                               const Predictor::Options& options)
    : snapshot_(std::move(snapshot)), section_(section) {
  const ThreadTrace& thread = snapshot_->section(section_);
  predictor_ = std::make_unique<Predictor>(
      thread.grammar, thread.timing.empty() ? nullptr : &thread.timing,
      options);
}

Result<PredictSession> PredictServer::open(
    std::size_t section, const Predictor::Options& options) const {
  std::shared_ptr<const TraceSnapshot> snapshot = this->snapshot();
  if (snapshot == nullptr) {
    return Status::invalid_state("predict server: nothing published");
  }
  if (section >= snapshot->sections()) {
    return Status::invalid_state("predict server: section " +
                                 std::to_string(section) + " out of range");
  }
  if (!snapshot->section_ok(section)) {
    return Status::corrupt("predict server: section " +
                           std::to_string(section) +
                           " was salvaged; cannot serve predictions");
  }
  return PredictSession(std::move(snapshot), section, options);
}

}  // namespace pythia::engine
