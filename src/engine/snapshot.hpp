// Shared-grammar predict serving.
//
// A recorded trace is a read-mostly artifact: once finalized it never
// changes, so any number of predict clients can walk the same grammar and
// timing model concurrently — Predictor keeps all mutable tracking state
// (progress paths, scratch buffers, breaker) per instance, and the
// Grammar/TimingModel it references are only ever read after finalize().
//
// The pieces:
//   - TraceSnapshot: an immutable, shared_ptr-held Trace. Created once,
//     then strictly read-only.
//   - SnapshotPublisher: the swap point for live trace reload. publish()
//     atomically replaces the current snapshot; sessions opened earlier
//     keep their pinned snapshot alive through their shared_ptr, so a
//     swap never invalidates an in-flight client — old snapshots die when
//     the last session drops them.
//   - PredictSession: one client's tracking state over a pinned snapshot
//     section. Sessions are independent: no locks, no shared mutable
//     state, near-linear scaling of predictions/sec across cores
//     (bench/scaling.cpp measures it).
//   - PredictServer: convenience bundle of a publisher plus open().
//
// Ordering: TraceSnapshot::make fully builds the snapshot before the
// shared_ptr is published; the atomic store/load pair in the publisher
// provides the release/acquire edge, so a client can never observe a
// half-built grammar.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "core/compiled_predictor.hpp"
#include "core/predictor.hpp"
#include "core/trace_io.hpp"
#include "support/io.hpp"
#include "support/status.hpp"

namespace pythia::engine {

class TraceSnapshot {
 public:
  /// Wraps a fully-built trace. Every intact thread grammar must be
  /// finalized (true for traces from record mode and Trace::try_load with
  /// default options). `version` is caller-assigned provenance (e.g. a
  /// reload counter or file mtime).
  static std::shared_ptr<const TraceSnapshot> make(Trace trace,
                                                   std::uint64_t version = 0);

  /// Loads a trace file and wraps it (salvage on: damaged sections become
  /// placeholders a session cannot open).
  static Result<std::shared_ptr<const TraceSnapshot>> load(
      const std::string& path, std::uint64_t version = 0);

  /// Zero-copy load: mmaps the file and serves the compiled sections in
  /// place — thread sections are never deserialized (their pages are not
  /// even faulted in), so cold-start cost is O(pages touched) instead of
  /// O(trace size). Sessions over a mapped snapshot always run the
  /// CompiledPredictor; sections without a valid compiled artifact are
  /// unopenable (section_ok false). Fails — rather than degrading — when
  /// the file has no usable compiled section at all, so callers can fall
  /// back to load(). The snapshot pins the mapping.
  static Result<std::shared_ptr<const TraceSnapshot>> load_mapped(
      const std::string& path, std::uint64_t version = 0);

  const Trace& trace() const { return trace_; }
  std::uint64_t version() const { return version_; }
  std::size_t sections() const { return trace_.threads.size(); }
  bool section_ok(std::size_t index) const { return trace_.thread_ok(index); }
  const ThreadTrace& section(std::size_t index) const {
    return trace_.threads[index];
  }
  /// True for snapshots produced by load_mapped (compiled-only serving,
  /// grammars not materialized).
  bool mapped() const { return mapped_file_.valid(); }
  /// Content digest — lets a reloader skip a no-op swap. Full snapshots
  /// use trace_digest; mapped ones combine the compiled sections'
  /// embedded grammar digests (the thread payloads are not decoded, so
  /// the two flavours are not comparable across modes).
  std::uint64_t digest() const { return digest_; }

 private:
  TraceSnapshot(Trace&& trace, std::uint64_t version);
  TraceSnapshot(Trace&& trace, support::MappedFile&& mapped,
                std::uint64_t version);

  Trace trace_;
  support::MappedFile mapped_file_;
  std::uint64_t version_ = 0;
  std::uint64_t digest_ = 0;
};

/// One predict client. Holds its snapshot alive; all mutable state is
/// private to the session, so concurrent sessions never synchronize.
/// Movable, not copyable (a Predictor's tracking state is one client's).
class PredictSession {
 public:
  void observe(TerminalId event) {
    compiled_ ? compiled_->observe(event) : predictor_->observe(event);
  }

  std::optional<Prediction> predict(std::size_t distance) const {
    return compiled_ ? compiled_->predict(distance)
                     : predictor_->predict(distance);
  }
  std::optional<double> predict_time_ns(std::size_t distance) const {
    return compiled_ ? compiled_->predict_time_ns(distance)
                     : predictor_->predict_time_ns(distance);
  }

  /// Batched query path: the most probable next `count` events, written
  /// into `out` in one grammar walk (O(count), no allocation after
  /// warm-up). Returns the number filled — short when the reference ends
  /// or the breaker suppresses predictions.
  std::size_t predict_n(TerminalId* out, std::size_t count) {
    return compiled_ ? compiled_->predict_sequence_into(out, count)
                     : predictor_->predict_sequence_into(out, count);
  }

  Health health() const {
    return compiled_ ? compiled_->health() : predictor_->health();
  }
  double confidence() const {
    return compiled_ ? compiled_->confidence() : predictor_->confidence();
  }
  const Predictor::Stats& stats() const {
    return compiled_ ? compiled_->stats() : predictor_->stats();
  }
  /// True when this session serves from the compiled automaton (always
  /// the case over a mapped snapshot; also whenever the section carries
  /// a valid compiled artifact).
  bool using_compiled() const { return compiled_ != nullptr; }

  /// The snapshot this session is pinned to (publisher swaps do not move
  /// a live session; re-open to pick up a new snapshot).
  const std::shared_ptr<const TraceSnapshot>& snapshot() const {
    return snapshot_;
  }

 private:
  friend class PredictServer;
  PredictSession(std::shared_ptr<const TraceSnapshot> snapshot,
                 std::size_t section, const Predictor::Options& options);

  std::shared_ptr<const TraceSnapshot> snapshot_;
  std::size_t section_ = 0;
  // Exactly one engine is live, chosen at open: the compiled automaton
  // when the section carries one, the interpreted walker otherwise.
  std::unique_ptr<Predictor> predictor_;
  std::unique_ptr<CompiledPredictor> compiled_;
};

class PredictServer {
 public:
  PredictServer() = default;
  explicit PredictServer(std::shared_ptr<const TraceSnapshot> initial) {
    publish(std::move(initial));
  }

  /// Atomically swaps the served snapshot (live trace reload). Lock-free
  /// for readers; in-flight sessions keep the snapshot they pinned.
  void publish(std::shared_ptr<const TraceSnapshot> next) {
    current_.store(std::move(next), std::memory_order_release);
    publishes_.fetch_add(1, std::memory_order_relaxed);
  }

  /// The snapshot new sessions would pin right now (may be null before
  /// the first publish).
  std::shared_ptr<const TraceSnapshot> snapshot() const {
    return current_.load(std::memory_order_acquire);
  }

  std::uint64_t publishes() const {
    return publishes_.load(std::memory_order_relaxed);
  }

  /// Opens a session over section `section` of the *current* snapshot.
  /// Fails (no-throw) when nothing is published, the section is out of
  /// range, or the section was salvaged as a placeholder.
  Result<PredictSession> open(
      std::size_t section,
      const Predictor::Options& options =
          Predictor::Options::runtime_defaults()) const;

 private:
  std::atomic<std::shared_ptr<const TraceSnapshot>> current_{};
  std::atomic<std::uint64_t> publishes_{0};
};

/// Online republish path (oracle-as-a-service): compiles `grammar`
/// (+ `timing`, may be nullptr) through `compiler` and atomically swaps
/// the result onto `server` as a single-section, *compiled-only* snapshot
/// — the thread section carries the blob and its parsed view over an
/// empty placeholder grammar, so every session serves from the compiled
/// automaton. With DeltaCompiler's reuse, a publish where only timing
/// changed skips the anchor-prediction lowering entirely, and a publish
/// where nothing changed reuses the previous blob outright; in-flight
/// sessions keep their pinned snapshot either way.
///
/// Fails (without publishing) when the grammar is not compilable or the
/// blob does not validate; the server keeps serving the old snapshot.
Status publish_compiled(PredictServer& server, DeltaCompiler& compiler,
                        const Grammar& grammar, const TimingModel* timing,
                        std::uint64_t grammar_digest,
                        std::uint64_t version = 0);

}  // namespace pythia::engine
