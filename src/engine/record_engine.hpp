// Sharded parallel record engine (the paper's per-thread design, §II-A,
// taken to its concurrent conclusion).
//
// PYTHIA reduces each thread's event stream into its own grammar — the
// streams never interact until the trace file is assembled — so record
// mode shards perfectly: one Recorder per rank, each owned by a dedicated
// worker thread, fed through a bounded SPSC ring buffer
// (support/spsc_ring.hpp). The instrumented application thread pays only
// the enqueue on its hot path; Sequitur's constant-work-per-symbol
// reduction happens on the worker. Because every ring preserves order and
// every shard has exactly one consumer, the grammar a worker builds is
// bit-for-bit the grammar the same stream would have built inline —
// parallel record is byte-identical to sequential record, rank by rank
// (asserted via thread_section_digest in the engine tests).
//
// Threading model:
//   - producer side: exactly one thread per shard calls
//     Producer::submit() (it implements EventSink, so Oracle::record_into
//     routes a rank's whole stream here);
//   - consumer side: one worker thread per shard pops batches and applies
//     them to the shard's Recorder; nobody else touches the Recorder
//     until finish();
//   - backpressure: a full ring either blocks the producer (default —
//     lossless, keeps determinism) or drops the newest event and counts
//     it (kDropNewest — for callers that prefer losing telemetry over
//     stalling, e.g. a latency-critical runtime hook);
//   - drain() is the barrier: every event enqueued before the call is
//     applied when it returns. finish() drains, stops the workers and
//     yields the per-shard ThreadTraces.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/oracle.hpp"
#include "core/recorder.hpp"
#include "core/timing.hpp"
#include "support/spsc_ring.hpp"

namespace pythia::engine {

/// One shard's state (ring + recorder + worker); defined in the .cpp.
struct Shard;

struct RingOptions {
  /// Ring slots per shard (rounded up to a power of two). 16Ki slots of
  /// 12-byte TimedEvents = 192 KiB per shard: enough to ride out multi-
  /// millisecond consumer stalls at tens of millions of events/s.
  std::size_t capacity = 1 << 14;

  enum class Backpressure {
    kBlock,      ///< full ring stalls the producer (lossless, default)
    kDropNewest  ///< full ring drops the submitted event and counts it
  };
  Backpressure backpressure = Backpressure::kBlock;

  /// Max events a worker pops per batch (one acquire load per batch).
  std::size_t pop_batch = 256;

  /// Keep per-event timestamps for the timing model (§II-C). The ring
  /// always carries them (TimedEvent is 12 bytes either way); this
  /// controls whether the Recorder retains the log.
  bool record_timestamps = true;
};

class RecordEngine {
 public:
  struct ShardStats {
    std::uint64_t enqueued = 0;  ///< events accepted into the ring
    std::uint64_t applied = 0;   ///< events reduced into the grammar
    std::uint64_t dropped = 0;   ///< events lost to kDropNewest backpressure
    std::uint64_t blocked = 0;   ///< submits that found the ring full
    std::uint64_t batches = 0;   ///< non-empty worker pops
    std::uint64_t max_batch = 0; ///< peak batch size (ring occupancy proxy)
  };

  /// Single-producer handle for one shard. Exactly one thread may call
  /// submit() at a time (it is the "single producer" of the shard's ring).
  class Producer final : public EventSink {
   public:
    void submit(TerminalId event, std::uint64_t now_ns) override;

   private:
    friend class RecordEngine;
    friend struct Shard;
    Producer() = default;
    Shard* shard_ = nullptr;
    RingOptions::Backpressure backpressure_ = RingOptions::Backpressure::kBlock;
  };

  RecordEngine(std::size_t shards, RingOptions options = {});
  ~RecordEngine();

  RecordEngine(const RecordEngine&) = delete;
  RecordEngine& operator=(const RecordEngine&) = delete;

  std::size_t shards() const { return shards_.size(); }
  const RingOptions& options() const { return options_; }

  Producer& producer(std::size_t shard);

  /// Barrier: returns once every event enqueued *before* the call has
  /// been applied to its shard's grammar. Safe to call repeatedly and
  /// concurrently with further submissions (those may or may not be
  /// covered); the drained state is only final once the producers stop.
  void drain();

  /// Drains, stops the workers, joins them, and finishes every shard's
  /// Recorder (finalize + timing-model replay) on the caller's thread.
  /// The engine is consumed: producers must not be used afterwards.
  std::vector<ThreadTrace> finish();

  /// Per-shard telemetry. Counters are monotonically published by the
  /// producer/worker; for settled numbers call after drain()/finish().
  ShardStats shard_stats(std::size_t shard) const;
  /// Sum over shards.
  ShardStats totals() const;

  /// Instantaneous ring occupancy (racy by nature; benches sample it for
  /// a high-water mark while producers run).
  std::size_t ring_size_approx(std::size_t shard) const;

 private:
  void worker_loop(Shard& shard);

  RingOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  bool finished_ = false;
};

}  // namespace pythia::engine
