#include "engine/record_engine.hpp"

#include <algorithm>
#include <chrono>

#include "support/assert.hpp"

namespace pythia::engine {

/// Everything one shard owns. Producer-written fields and worker-written
/// fields sit on separate cache lines (the ring already pads its two
/// cursors); the mutex/condvar pair exists only to park an idle worker —
/// the event path never touches it.
struct Shard {
  Shard(const RingOptions& options)
      : ring(options.capacity),
        recorder(Recorder::Options{.record_timestamps =
                                       options.record_timestamps}) {}

  support::SpscRing<TimedEvent> ring;
  Recorder recorder;
  std::thread worker;
  std::atomic<bool> stop{false};

  // Producer-side counters (single writer, read by stats/drain).
  alignas(support::kCacheLineBytes) std::atomic<std::uint64_t> enqueued{0};
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> blocked{0};

  // Worker-side counters.
  alignas(support::kCacheLineBytes) std::atomic<std::uint64_t> applied{0};
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> max_batch{0};

  // Idle-worker parking. `sleeping` lets the producer skip the lock on
  // the hot path: it only takes the mutex to notify when the worker
  // really is (or is about to be) parked. The worker always waits with a
  // timeout, so a lost wakeup costs one tick, never liveness.
  std::mutex park_mutex;
  std::condition_variable park_ready;
  std::atomic<bool> sleeping{false};

  RecordEngine::Producer producer;
};

void RecordEngine::Producer::submit(TerminalId event, std::uint64_t now_ns) {
  Shard& shard = *shard_;
  const TimedEvent timed = TimedEvent::make(event, now_ns);
  if (!shard.ring.try_push(timed)) {
    if (backpressure_ == RingOptions::Backpressure::kDropNewest) {
      shard.dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    shard.blocked.fetch_add(1, std::memory_order_relaxed);
    // Lossless backpressure: the ring is full, so the worker is awake and
    // busy — yield until a slot frees up (on an oversubscribed machine
    // the yield is what lets the worker run at all).
    do {
      std::this_thread::yield();
    } while (!shard.ring.try_push(timed));
  }
  shard.enqueued.fetch_add(1, std::memory_order_release);
  if (shard.sleeping.load(std::memory_order_acquire)) {
    // Taking the mutex orders this notify against the worker's
    // empty-recheck-then-wait, closing the sleep/notify race.
    std::lock_guard lock(shard.park_mutex);
    shard.park_ready.notify_one();
  }
}

RecordEngine::RecordEngine(std::size_t shards, RingOptions options)
    : options_(options) {
  PYTHIA_ASSERT_MSG(shards >= 1, "RecordEngine needs at least one shard");
  PYTHIA_ASSERT(options_.pop_batch >= 1);
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(options_));
    Shard& shard = *shards_.back();
    shard.producer.shard_ = &shard;
    shard.producer.backpressure_ = options_.backpressure;
    shard.worker = std::thread([this, &shard] { worker_loop(shard); });
  }
}

RecordEngine::~RecordEngine() {
  if (finished_) return;
  for (auto& shard : shards_) {
    shard->stop.store(true, std::memory_order_release);
    std::lock_guard lock(shard->park_mutex);
    shard->park_ready.notify_one();
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

RecordEngine::Producer& RecordEngine::producer(std::size_t shard) {
  PYTHIA_ASSERT(shard < shards_.size());
  return shards_[shard]->producer;
}

void RecordEngine::worker_loop(Shard& shard) {
  std::vector<TimedEvent> batch(options_.pop_batch);
  int idle_spins = 0;
  for (;;) {
    const std::size_t n = shard.ring.pop_batch(batch.data(), batch.size());
    if (n == 0) {
      if (shard.stop.load(std::memory_order_acquire) &&
          shard.ring.empty_approx()) {
        break;
      }
      if (++idle_spins < 64) {
        std::this_thread::yield();
        continue;
      }
      // Park until the producer notifies (or a tick passes — the timeout
      // makes a lost notify harmless and bounds shutdown latency).
      std::unique_lock lock(shard.park_mutex);
      shard.sleeping.store(true, std::memory_order_release);
      if (shard.ring.empty_approx() &&
          !shard.stop.load(std::memory_order_acquire)) {
        shard.park_ready.wait_for(lock, std::chrono::milliseconds(1));
      }
      shard.sleeping.store(false, std::memory_order_release);
      idle_spins = 0;
      continue;
    }
    idle_spins = 0;
    shard.batches.fetch_add(1, std::memory_order_relaxed);
    if (n > shard.max_batch.load(std::memory_order_relaxed)) {
      shard.max_batch.store(n, std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < n; ++i) {
      shard.recorder.record(batch[i].event, batch[i].time_ns());
    }
    shard.applied.fetch_add(n, std::memory_order_release);
  }
}

void RecordEngine::drain() {
  for (auto& shard : shards_) {
    const std::uint64_t target = shard->enqueued.load(std::memory_order_acquire);
    while (shard->applied.load(std::memory_order_acquire) < target) {
      if (shard->sleeping.load(std::memory_order_acquire)) {
        std::lock_guard lock(shard->park_mutex);
        shard->park_ready.notify_one();
      }
      std::this_thread::yield();
    }
  }
}

std::vector<ThreadTrace> RecordEngine::finish() {
  PYTHIA_ASSERT_MSG(!finished_, "RecordEngine::finish() called twice");
  drain();
  for (auto& shard : shards_) {
    shard->stop.store(true, std::memory_order_release);
    std::lock_guard lock(shard->park_mutex);
    shard->park_ready.notify_one();
  }
  std::vector<ThreadTrace> traces;
  traces.reserve(shards_.size());
  for (auto& shard : shards_) {
    shard->worker.join();
    traces.push_back(std::move(shard->recorder).finish());
  }
  finished_ = true;
  return traces;
}

RecordEngine::ShardStats RecordEngine::shard_stats(std::size_t shard) const {
  PYTHIA_ASSERT(shard < shards_.size());
  const Shard& s = *shards_[shard];
  ShardStats stats;
  stats.enqueued = s.enqueued.load(std::memory_order_acquire);
  stats.applied = s.applied.load(std::memory_order_acquire);
  stats.dropped = s.dropped.load(std::memory_order_acquire);
  stats.blocked = s.blocked.load(std::memory_order_acquire);
  stats.batches = s.batches.load(std::memory_order_acquire);
  stats.max_batch = s.max_batch.load(std::memory_order_acquire);
  return stats;
}

std::size_t RecordEngine::ring_size_approx(std::size_t shard) const {
  PYTHIA_ASSERT(shard < shards_.size());
  return shards_[shard]->ring.size_approx();
}

RecordEngine::ShardStats RecordEngine::totals() const {
  ShardStats total;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const ShardStats stats = shard_stats(s);
    total.enqueued += stats.enqueued;
    total.applied += stats.applied;
    total.dropped += stats.dropped;
    total.blocked += stats.blocked;
    total.batches += stats.batches;
    total.max_batch = std::max(total.max_batch, stats.max_batch);
  }
  return total;
}

}  // namespace pythia::engine
