// Thread-pool management cost model.
//
// GNU OpenMP destroys spurious threads when the requested team shrinks;
// the paper modified it to *park* them instead (§III-D1, "we have made
// the spurious threads wait until they are needed again"). Both
// behaviours are modelled so the adaptive strategy can be evaluated with
// and without the modification (parking is what makes per-region team
// resizing affordable).
#pragma once

#include <algorithm>

#include "ompsim/machine.hpp"
#include "support/assert.hpp"

namespace pythia::ompsim {

class ThreadPoolModel {
 public:
  ThreadPoolModel(const MachineModel& machine, bool park_spurious)
      : machine_(machine), park_spurious_(park_spurious) {}

  /// Cost (ns) of establishing a team of `threads`, updating pool state.
  double adjust_to(int threads) {
    PYTHIA_ASSERT(threads >= 1);
    double cost = 0.0;
    if (threads > alive_) {
      // Wake parked threads first, then create the rest.
      const int want = threads - alive_;
      const int unparked = std::min(want, parked_);
      const int spawned = want - unparked;
      cost += machine_.unpark_thread_ns * static_cast<double>(unparked);
      cost += machine_.spawn_thread_ns * static_cast<double>(spawned);
      parked_ -= unparked;
      alive_ = threads;
    } else if (threads < alive_) {
      const int spurious = alive_ - threads;
      if (park_spurious_) {
        parked_ += spurious;  // free: they block on a futex
      } else {
        cost += machine_.destroy_thread_ns * static_cast<double>(spurious);
      }
      alive_ = threads;
    }
    return cost;
  }

  int alive() const { return alive_; }
  int parked() const { return parked_; }

 private:
  MachineModel machine_;
  bool park_spurious_;
  int alive_ = 1;   ///< threads currently in the team (master included)
  int parked_ = 0;  ///< idle threads waiting for reuse (modified pool)
};

}  // namespace pythia::ompsim
