// Machine cost model for the simulated OpenMP runtime.
//
// The host running this reproduction has a single core, so the paper's
// 16/24-thread experiments (figs. 10–14) execute in *virtual time*: a
// parallel region of `serial_work_ns` run by T threads costs
//
//   work·(1−f) + work·f / min(T, cores)     (Amdahl)
// + fork/join overhead(T)                   (grows with T)
//
// which reproduces the trade-off the paper's optimization exploits: many
// small regions lose more to synchronization than they gain from
// parallelism. Machine presets mirror the paper's testbeds.
#pragma once

#include <algorithm>
#include <cmath>
#include <string>

namespace pythia::ompsim {

struct MachineModel {
  std::string name;
  int cores = 8;
  /// Relative single-core speed (Pudding's 2.1 GHz Xeon Silver = 1.0).
  double core_speed = 1.0;

  // Fork/join overhead: base + linear per woken thread + log-depth barrier.
  double fork_base_ns = 1'500.0;
  double fork_per_thread_ns = 650.0;
  double barrier_log_ns = 900.0;

  // Thread pool management.
  double spawn_thread_ns = 60'000.0;   ///< pthread_create + warm-up
  double destroy_thread_ns = 20'000.0; ///< join + teardown
  /// Extra cost of re-engaging a parked thread beyond the normal fork
  /// wake (which fork_per_thread_ns already covers) — nearly free; that
  /// is the point of the paper's pool modification.
  double unpark_thread_ns = 300.0;

  double overhead_ns(int threads) const {
    if (threads <= 1) return fork_base_ns * 0.25;  // serialized region
    return fork_base_ns +
           fork_per_thread_ns * static_cast<double>(threads) +
           barrier_log_ns * std::log2(static_cast<double>(threads));
  }

  double region_cost_ns(double serial_work_ns, int threads,
                        double parallel_fraction) const {
    const double work = serial_work_ns / core_speed;
    const int effective = std::max(1, std::min(threads, cores));
    const double serial_part = work * (1.0 - parallel_fraction);
    const double parallel_part =
        work * parallel_fraction / static_cast<double>(effective);
    return serial_part + parallel_part + overhead_ns(threads);
  }

  /// Paper testbed "Pudding": 2× Xeon Silver 4116, 24 cores @ 2.1 GHz.
  static MachineModel pudding() {
    MachineModel machine;
    machine.name = "pudding";
    machine.cores = 24;
    machine.core_speed = 1.0;
    return machine;
  }

  /// Paper testbed "Pixel": 2× Xeon E5-2630 v3, 16 cores @ 2.4 GHz.
  static MachineModel pixel() {
    MachineModel machine;
    machine.name = "pixel";
    machine.cores = 16;
    machine.core_speed = 2.4 / 2.1;
    return machine;
  }

  /// Paravance compute node: 2× Xeon E5-2630 v3, 16 cores @ 2.4 GHz.
  static MachineModel paravance() {
    MachineModel machine = pixel();
    machine.name = "paravance";
    return machine;
  }
};

}  // namespace pythia::ompsim
