// GOMP-like parallel-region runtime (paper §III-B "OpenMP runtime
// system" and §III-D1).
//
// The runtime intercepts parallel-region entry/exit the way the paper's
// modified GNU OpenMP does:
//  * submits a GOMP_parallel begin/end event pair to PYTHIA, with the
//    region identifier (the paper uses the outlined function pointer) as
//    the event payload;
//  * in predict mode, asks PYTHIA for the region's expected duration at
//    region entry and lets the adaptive policy pick the team size;
//  * manages the worker pool through ThreadPoolModel (parked or vanilla).
//
// Region bodies execute for real (sequentially, per simulated thread) so
// application state and recording overhead are genuine; the region's
// *duration* is virtual, from MachineModel::region_cost_ns.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "core/event.hpp"
#include "core/oracle.hpp"
#include "core/shared_registry.hpp"
#include "ompsim/adaptive.hpp"
#include "ompsim/machine.hpp"
#include "ompsim/thread_pool.hpp"
#include "sim/clock.hpp"
#include "sim/spin.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace pythia::ompsim {

/// Interned kind ids for the intercepted GOMP entry points.
struct OmpEventKinds {
  KindId parallel_begin, parallel_end;
  KindId critical_begin, critical_end, barrier, single;
  KindId loop_start, loop_end;

  static OmpEventKinds intern(SharedRegistry& registry) {
    OmpEventKinds kinds;
    kinds.parallel_begin = registry.kind("GOMP_parallel_start");
    kinds.parallel_end = registry.kind("GOMP_parallel_end");
    kinds.critical_begin = registry.kind("GOMP_critical_start");
    kinds.critical_end = registry.kind("GOMP_critical_end");
    kinds.barrier = registry.kind("GOMP_barrier");
    kinds.single = registry.kind("GOMP_single_start");
    kinds.loop_start = registry.kind("GOMP_loop_static_start");
    kinds.loop_end = registry.kind("GOMP_loop_end");
    return kinds;
  }
};

/// A parallel region body: body(thread_id, team_size). Bodies must
/// partition work by thread_id exactly like an OpenMP worksharing loop
/// with omp_get_num_threads() (the paper's Lulesh fix, §III-D2).
using RegionBody = std::function<void(int, int)>;

class OmpRuntime {
 public:
  struct Config {
    MachineModel machine;
    int max_threads = 1;
    /// Park spurious threads instead of destroying them (the paper's
    /// pool modification). Vanilla GNU OpenMP behaviour when false.
    bool park_spurious = true;
    /// Use the adaptive policy (predict mode); otherwise always run
    /// max_threads like vanilla GNU OpenMP.
    bool adaptive = false;
    /// Fraction of virtual region time burned as real CPU (Table I).
    double real_work_fraction = 0.0;
    /// Fig. 14 fault injection: probability of submitting a spurious
    /// unknown event before each real one ("we modify GNU OpenMP to
    /// randomly submit unexpected events with a given error rate").
    double error_rate = 0.0;
    std::uint64_t error_seed = 0x5eed;
  };

  struct Stats {
    std::uint64_t regions = 0;
    std::uint64_t threads_used_total = 0;
    std::uint64_t adaptive_decisions = 0;   ///< regions with a prediction
    std::uint64_t fallback_decisions = 0;   ///< no prediction -> max
    std::uint64_t degraded_decisions = 0;   ///< breaker open -> vanilla
    double pool_cost_ns = 0.0;
    double region_time_ns = 0.0;

    double mean_team() const {
      return regions > 0 ? static_cast<double>(threads_used_total) /
                               static_cast<double>(regions)
                         : 0.0;
    }
  };

  /// `oracle` is the per-thread PYTHIA session (off / record / predict);
  /// `clock` is the owning rank's virtual clock (shared with MPI).
  OmpRuntime(const Config& config, sim::VirtualClock& clock, Oracle& oracle,
             SharedRegistry& registry)
      : config_(config),
        clock_(clock),
        oracle_(oracle),
        interner_(registry),
        kinds_(OmpEventKinds::intern(registry)),
        pool_(config.machine, config.park_spurious),
        policy_(AdaptivePolicy::from_model(config.machine,
                                           config.max_threads)),
        error_rng_(config.error_seed) {
    PYTHIA_ASSERT(config.max_threads >= 1);
    if (config.error_rate > 0.0) {
      unexpected_kind_ = registry.kind("UNEXPECTED_EVENT");
    }
  }

  /// Executes one parallel region. `region_id` plays the role of the
  /// outlined-function pointer; `serial_work_ns` is the region's total
  /// single-threaded work; `parallel_fraction` its parallelizable share.
  void parallel(int region_id, double serial_work_ns,
                double parallel_fraction, const RegionBody& body = {}) {
    emit(kinds_.parallel_begin, region_id);

    int team = config_.max_threads;
    if (config_.adaptive) {
      if (oracle_.degraded()) {
        // Circuit breaker open: the oracle lost the execution, so don't
        // even ask — run the region exactly like vanilla GNU OpenMP
        // (max_threads). Guarantees divergence costs decisions nothing.
        ++stats_.degraded_decisions;
      } else {
        // Predicted delay from the begin event to the next event — which,
        // in the reference trace, is this region's end event.
        const std::optional<double> predicted = oracle_.predict_time_ns(1);
        team = policy_.choose_threads(predicted);
        if (predicted.has_value()) {
          ++stats_.adaptive_decisions;
        } else {
          ++stats_.fallback_decisions;
        }
      }
    }

    const double pool_ns = pool_.adjust_to(team);
    clock_.advance(pool_ns);
    stats_.pool_cost_ns += pool_ns;

    if (body) {
      for (int tid = 0; tid < team; ++tid) body(tid, team);
    }
    const double region_ns = config_.machine.region_cost_ns(
        serial_work_ns, team, parallel_fraction);
    clock_.advance(region_ns);
    if (config_.real_work_fraction > 0.0) {
      sim::Spinner::spin_ns(region_ns * config_.real_work_fraction);
    }
    stats_.region_time_ns += region_ns + pool_ns;
    ++stats_.regions;
    stats_.threads_used_total += static_cast<std::uint64_t>(team);
    last_team_ = team;

    emit(kinds_.parallel_end, region_id);
  }

  /// A critical section (event pair + serialized cost).
  void critical(int section_id, double work_ns) {
    emit(kinds_.critical_begin, section_id);
    clock_.advance(work_ns / config_.machine.core_speed);
    emit(kinds_.critical_end, section_id);
  }

  /// An explicit barrier inside a region.
  void barrier() {
    emit(kinds_.barrier);
    clock_.advance(config_.machine.overhead_ns(last_team_));
  }

  /// A `single` construct: one thread works, the team waits at the
  /// implicit barrier.
  void single(int section_id, double work_ns) {
    emit(kinds_.single, section_id);
    clock_.advance(work_ns / config_.machine.core_speed +
                   config_.machine.overhead_ns(last_team_));
  }

  /// A worksharing loop inside the current region (GOMP_loop_*_start):
  /// like a nested parallel-for without re-forking the team.
  void for_loop(int loop_id, double serial_work_ns,
                double parallel_fraction) {
    emit(kinds_.loop_start, loop_id);
    const double cost = config_.machine.region_cost_ns(
        serial_work_ns, last_team_, parallel_fraction);
    clock_.advance(cost - config_.machine.overhead_ns(last_team_) +
                   config_.machine.barrier_log_ns);
    emit(kinds_.loop_end, loop_id);
  }

  int last_team() const { return last_team_; }
  const Stats& stats() const { return stats_; }
  const AdaptivePolicy& policy() const { return policy_; }
  const Config& config() const { return config_; }

 private:
  void emit(KindId kind, EventAux aux = kNoAux) {
    oracle_.event(interner_.event(kind, aux), clock_.now_ns());
    if (config_.error_rate > 0.0 && error_rng_.chance(config_.error_rate)) {
      // A fresh aux each time makes the event unknown to the reference
      // grammar, so the oracle loses synchronization (§III-E). Injected
      // *after* the real event: a spurious event landing right after a
      // region entry leaves the runtime without a prediction for that
      // region — the paper's "bad decisions such as using the maximum
      // number of threads for a small parallel region".
      oracle_.event(
          interner_.event(unexpected_kind_,
                          static_cast<EventAux>(++unexpected_counter_)),
          clock_.now_ns());
    }
  }

  Config config_;
  sim::VirtualClock& clock_;
  Oracle& oracle_;
  CachedInterner interner_;
  OmpEventKinds kinds_;
  ThreadPoolModel pool_;
  AdaptivePolicy policy_;
  Stats stats_;
  int last_team_ = 1;
  support::Rng error_rng_;
  KindId unexpected_kind_ = 0;
  std::uint64_t unexpected_counter_ = 0;
};

}  // namespace pythia::ompsim
