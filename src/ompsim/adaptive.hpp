// Adaptive thread-count policy (paper §III-D1).
//
// "Based on the estimated duration D_est, GNU OpenMP decides how many
// threads should be used, e.g. 1 thread if D_est < t1, 4 threads if
// D_est < t4, 8 threads if D_est < t8, and so on."
//
// The duration PYTHIA predicts is the region's duration in the reference
// execution, i.e. with the maximum number of threads. The threshold
// ladder is derived from the machine model: t_k is the predicted-duration
// break-even point below which k threads are at least as good as the next
// larger candidate team.
#pragma once

#include <optional>
#include <vector>

#include "ompsim/machine.hpp"
#include "support/assert.hpp"

namespace pythia::ompsim {

class AdaptivePolicy {
 public:
  struct Threshold {
    double max_predicted_ns;  ///< use `threads` when D_est is below this
    int threads;
  };

  /// Builds the ladder for `machine` with teams {1, 2, 4, 8, ...,
  /// max_threads}.
  static AdaptivePolicy from_model(const MachineModel& machine,
                                   int max_threads) {
    PYTHIA_ASSERT(max_threads >= 1);
    std::vector<int> candidates;
    for (int t = 1; t < max_threads; t *= 2) candidates.push_back(t);
    candidates.push_back(max_threads);

    AdaptivePolicy policy;
    policy.max_threads_ = max_threads;
    for (std::size_t i = 0; i + 1 < candidates.size(); ++i) {
      const int k = candidates[i];
      const int next = candidates[i + 1];
      // Break-even serial work w*: cost(w, k) == cost(w, next).
      const int ek = std::min(k, machine.cores);
      const int en = std::min(next, machine.cores);
      double work = 0.0;
      if (en > ek) {
        const double inv_gap = 1.0 / ek - 1.0 / en;
        work = (machine.overhead_ns(next) - machine.overhead_ns(k)) / inv_gap;
        work = std::max(work, 0.0);
      }
      // Express the break-even as a *predicted duration* (duration under
      // max_threads, which is what the reference run recorded).
      const double as_predicted =
          machine.region_cost_ns(work * machine.core_speed, max_threads, 1.0);
      policy.ladder_.push_back({as_predicted, k});
    }
    return policy;
  }

  /// Chooses the team size. Without a prediction the runtime falls back
  /// to its default heuristic: the maximum number of threads.
  int choose_threads(std::optional<double> predicted_ns) const {
    if (!predicted_ns.has_value()) return max_threads_;
    for (const Threshold& threshold : ladder_) {
      if (*predicted_ns < threshold.max_predicted_ns) {
        return threshold.threads;
      }
    }
    return max_threads_;
  }

  const std::vector<Threshold>& ladder() const { return ladder_; }
  int max_threads() const { return max_threads_; }

 private:
  std::vector<Threshold> ladder_;
  int max_threads_ = 1;
};

}  // namespace pythia::ompsim
