// faults::Plan — the one fault-injection configuration surface.
//
// Extracted from harness::RunConfig so that every driver that perturbs a
// PYTHIA component — harness::run_app degrading an oracle's event stream,
// the serve soak tests corrupting wire frames in flight — shares a single
// seeded, bit-reproducible knob struct instead of growing parallel copies.
// The *mechanisms* stay where they belong (EventFaultInjector in
// src/harness, frame corruption in the serve tests, kill points in
// support/crash_point.hpp); this header only owns the dials.
#pragma once

#include <cstdint>

namespace pythia::faults {

/// Seeded perturbation rates, each rolled independently per unit (event
/// or frame). A default-constructed Plan injects nothing.
struct Plan {
  // --- Event-stream faults (harness::EventFaultInjector): a lossy
  // instrumentation channel between the application and its oracle. ---
  double drop_rate = 0.0;       ///< event never reaches the oracle
  double duplicate_rate = 0.0;  ///< event observed twice
  double reorder_rate = 0.0;    ///< event swapped with its successor
  double inject_rate = 0.0;     ///< spurious unknown event appended

  // --- Wire-frame faults (serve soak drivers): a hostile or failing
  // client/transport between a predict daemon and its tenants. ---
  double frame_corrupt_rate = 0.0;  ///< fraction of frames bit-flipped
  int frame_bit_flips = 2;          ///< flips per corrupted frame

  /// One seed drives every surface; drivers salt it per rank / per
  /// tenant / per connection to decorrelate streams sharing a plan.
  std::uint64_t seed = 0x7a1b5;

  /// True when the *event stream* is perturbed (harness fast-path check;
  /// wire faults are the serve drivers' business).
  bool active() const {
    return drop_rate > 0.0 || duplicate_rate > 0.0 || reorder_rate > 0.0 ||
           inject_rate > 0.0;
  }

  bool wire_active() const { return frame_corrupt_rate > 0.0; }

  /// Convenience for sweeps: every event-fault class at the same rate.
  static Plan uniform(double rate, std::uint64_t seed = 0x7a1b5) {
    Plan plan;
    plan.drop_rate = rate;
    plan.duplicate_rate = rate;
    plan.reorder_rate = rate;
    plan.inject_rate = rate;
    plan.seed = seed;
    return plan;
  }
};

}  // namespace pythia::faults
