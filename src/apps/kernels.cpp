#include "apps/kernels.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace pythia::apps::kernels {

EpResult ep_gaussian_pairs(support::Rng& rng, std::uint64_t pairs) {
  EpResult result;
  for (std::uint64_t i = 0; i < pairs; ++i) {
    const double x = 2.0 * rng.uniform() - 1.0;
    const double y = 2.0 * rng.uniform() - 1.0;
    const double t = x * x + y * y;
    if (t > 1.0 || t == 0.0) continue;
    const double factor = std::sqrt(-2.0 * std::log(t) / t);
    const double gx = x * factor;
    const double gy = y * factor;
    result.sum_x += gx;
    result.sum_y += gy;
    const double magnitude = std::max(std::fabs(gx), std::fabs(gy));
    const auto annulus =
        static_cast<std::size_t>(std::min(9.0, std::floor(magnitude)));
    ++result.counts[annulus];
    ++result.accepted;
  }
  return result;
}

std::uint64_t bucket_sort(std::vector<std::uint32_t>& keys,
                          std::uint32_t key_range) {
  PYTHIA_ASSERT(key_range >= 1);
  std::vector<std::uint32_t> histogram(key_range, 0);
  for (const std::uint32_t key : keys) {
    PYTHIA_ASSERT(key < key_range);
    ++histogram[key];
  }
  std::size_t position = 0;
  for (std::uint32_t key = 0; key < key_range; ++key) {
    for (std::uint32_t i = 0; i < histogram[key]; ++i) {
      keys[position++] = key;
    }
  }
  // Positional checksum (order-sensitive).
  std::uint64_t checksum = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    checksum += (i + 1) * static_cast<std::uint64_t>(keys[i] + 1);
  }
  return checksum;
}

void cg_matvec(const std::vector<double>& p, std::vector<double>& y) {
  const std::size_t n = p.size();
  PYTHIA_ASSERT(y.size() == n && n >= 3);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t prev = i == 0 ? n - 1 : i - 1;
    const std::size_t next = i == n - 1 ? 0 : i + 1;
    y[i] = 4.0 * p[i] - p[prev] - p[next];
  }
}

CgState::CgState(std::size_t n) : x(n, 0.0), r(n), p(n) {
  PYTHIA_ASSERT(n >= 3);
  // Non-constant right-hand side (a constant vector is an eigenvector of
  // the periodic operator and converges in one step): b_i = 1 + (i%5)/4.
  rho = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    r[i] = 1.0 + 0.25 * static_cast<double>(i % 5);
    p[i] = r[i];
    rho += r[i] * r[i];
  }
}

double cg_step(CgState& state) {
  const std::size_t n = state.x.size();
  if (state.rho < 1e-300) return 0.0;  // converged to machine zero
  std::vector<double> q(n);
  cg_matvec(state.p, q);
  double pq = 0.0;
  for (std::size_t i = 0; i < n; ++i) pq += state.p[i] * q[i];
  PYTHIA_ASSERT(pq > 0.0);  // SPD matrix
  const double alpha = state.rho / pq;
  double rho_next = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    state.x[i] += alpha * state.p[i];
    state.r[i] -= alpha * q[i];
    rho_next += state.r[i] * state.r[i];
  }
  const double beta = rho_next / state.rho;
  for (std::size_t i = 0; i < n; ++i) {
    state.p[i] = state.r[i] + beta * state.p[i];
  }
  state.rho = rho_next;
  return std::sqrt(rho_next);
}

double mg_relax(std::vector<double>& grid, std::size_t n, int sweeps) {
  PYTHIA_ASSERT(grid.size() == n * n * n && n >= 3);
  auto at = [&](std::size_t i, std::size_t j, std::size_t k) -> double& {
    return grid[(i * n + j) * n + k];
  };
  constexpr double kRhs = 1.0;
  for (int sweep = 0; sweep < sweeps; ++sweep) {
    for (int color = 0; color < 2; ++color) {
      for (std::size_t i = 1; i + 1 < n; ++i) {
        for (std::size_t j = 1; j + 1 < n; ++j) {
          for (std::size_t k = 1; k + 1 < n; ++k) {
            if (static_cast<int>((i + j + k) & 1u) != color) continue;
            at(i, j, k) = (at(i - 1, j, k) + at(i + 1, j, k) +
                           at(i, j - 1, k) + at(i, j + 1, k) +
                           at(i, j, k - 1) + at(i, j, k + 1) + kRhs) /
                          6.0;
          }
        }
      }
    }
  }
  double residual = 0.0;
  for (std::size_t i = 1; i + 1 < n; ++i) {
    for (std::size_t j = 1; j + 1 < n; ++j) {
      for (std::size_t k = 1; k + 1 < n; ++k) {
        const double local =
            6.0 * at(i, j, k) - at(i - 1, j, k) - at(i + 1, j, k) -
            at(i, j - 1, k) - at(i, j + 1, k) - at(i, j, k - 1) -
            at(i, j, k + 1) - kRhs;
        residual += local * local;
      }
    }
  }
  return std::sqrt(residual);
}

double hydro_energy_update(std::vector<double>& energy,
                           std::vector<double>& pressure, double dt) {
  PYTHIA_ASSERT(energy.size() == pressure.size());
  double total = 0.0;
  for (std::size_t i = 0; i < energy.size(); ++i) {
    // EOS-ish: pressure follows energy; energy decays by pdV work.
    pressure[i] = 0.4 * energy[i];
    energy[i] = std::max(0.0, energy[i] - dt * pressure[i]);
    total += energy[i];
  }
  return total;
}

double fft_radix2(std::vector<double>& interleaved) {
  const std::size_t n = interleaved.size() / 2;
  PYTHIA_ASSERT(n >= 2 && (n & (n - 1)) == 0);
  // Bit reversal.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) {
      std::swap(interleaved[2 * i], interleaved[2 * j]);
      std::swap(interleaved[2 * i + 1], interleaved[2 * j + 1]);
    }
  }
  // Butterflies.
  for (std::size_t length = 2; length <= n; length <<= 1) {
    const double angle = -2.0 * M_PI / static_cast<double>(length);
    const double w_re = std::cos(angle);
    const double w_im = std::sin(angle);
    for (std::size_t block = 0; block < n; block += length) {
      double cur_re = 1.0, cur_im = 0.0;
      for (std::size_t k = 0; k < length / 2; ++k) {
        const std::size_t even = 2 * (block + k);
        const std::size_t odd = 2 * (block + k + length / 2);
        const double odd_re =
            interleaved[odd] * cur_re - interleaved[odd + 1] * cur_im;
        const double odd_im =
            interleaved[odd] * cur_im + interleaved[odd + 1] * cur_re;
        interleaved[odd] = interleaved[even] - odd_re;
        interleaved[odd + 1] = interleaved[even + 1] - odd_im;
        interleaved[even] += odd_re;
        interleaved[even + 1] += odd_im;
        const double next_re = cur_re * w_re - cur_im * w_im;
        cur_im = cur_re * w_im + cur_im * w_re;
        cur_re = next_re;
      }
    }
  }
  double checksum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    checksum += std::sqrt(interleaved[2 * i] * interleaved[2 * i] +
                          interleaved[2 * i + 1] * interleaved[2 * i + 1]);
  }
  return checksum;
}

}  // namespace pythia::apps::kernels
