// Branchy — data-dependent branching and load imbalance (MPI + optional
// guided I/O), adversarially irregular.
//
// Not a Table I application: an analytics-style main loop whose body is
// chosen per iteration by the *data* — a compute-heavy phase, an
// I/O-bound phase walking blocks through the prediction-guided reader
// (RankEnv::io, when the harness enabled it), or an exchange phase whose
// partner hops around the ring. A shared-seed RNG drives the branch so
// all ranks agree on the control flow (sends match receives) while the
// event stream refuses to settle into a single loop body. The I/O branch
// alternates a regular sequential scan with random probes, so the online
// oracle's prefetch decisions are tested on exactly the mix where acting
// on a bad prediction costs real evictions.
#include <vector>

#include "apps/app.hpp"
#include "apps/catalog.hpp"
#include "apps/kernels.hpp"
#include "apps/topology.hpp"
#include "iosim/prefetcher.hpp"

namespace pythia::apps {
namespace {

struct BranchyParams {
  int iterations;
  int scan_blocks;  ///< blocks per I/O scan
};

BranchyParams branchy_params(WorkingSet set, double scale) {
  switch (set) {
    case WorkingSet::kSmall:
      return {scaled(60, scale), 8};
    case WorkingSet::kMedium:
      return {scaled(120, scale), 12};
    case WorkingSet::kLarge:
      return {scaled(240, scale), 20};
  }
  return {60, 8};
}

constexpr double kComputeHeavyNs = 80'000.0;
constexpr double kComputeLightNs = 6'000.0;

class BranchyApp final : public App {
 public:
  std::string name() const override { return "Branchy"; }
  bool hybrid() const override { return false; }
  int default_ranks() const override { return 4; }

  void run_rank(RankEnv& env, const AppConfig& config) const override {
    auto& mpi = env.mpi;
    const BranchyParams params = branchy_params(config.set, config.scale);
    const int ranks = mpi.size();
    const int rank = mpi.rank();
    const std::vector<double> payload(24, 1.0);

    mpi.barrier();

    for (int iter = 0; iter < params.iterations; ++iter) {
      support::Rng shared(config.seed * 6364136223846793005ULL +
                          static_cast<std::uint64_t>(iter) * 1442695040888963407ULL);
      const double branch = shared.uniform();

      if (branch < 0.40) {
        // Compute-heavy phase with data-dependent imbalance: one
        // RNG-chosen straggler does 3x the work before the reduce.
        const int straggler = static_cast<int>(
            shared.below(static_cast<std::uint64_t>(ranks)));
        kernels::ep_gaussian_pairs(env.rng, 400);
        mpi.compute(rank == straggler ? 3.0 * kComputeHeavyNs
                                      : kComputeHeavyNs);
        mpi.allreduce(1.0, mpisim::ReduceOp::kMax);
      } else if (branch < 0.70) {
        // I/O phase: a sequential scan over a window, with random probes
        // interleaved on a data-dependent cadence.
        const auto window =
            shared.below(4) * static_cast<std::uint64_t>(params.scan_blocks);
        for (int b = 0; b < params.scan_blocks; ++b) {
          const std::uint64_t block = window + static_cast<std::uint64_t>(b);
          if (env.io != nullptr) {
            env.io->read(block);
            env.io->compute(kComputeLightNs);
          } else {
            mpi.compute(kComputeLightNs);
          }
          if (shared.uniform() < 0.2) {
            const std::uint64_t probe = shared.below(96);
            if (env.io != nullptr) {
              env.io->read(probe);
              env.io->compute(kComputeLightNs);
            } else {
              mpi.compute(kComputeLightNs);
            }
          }
        }
        mpi.barrier();
      } else if (ranks > 1) {
        // Exchange phase: partner distance hops 1/2/3 around the ring
        // (clamped into [1, ranks-1] so a rank never exchanges with
        // itself at small rank counts).
        const int hop =
            1 + static_cast<int>(shared.below(3)) % (ranks - 1 > 0 ? ranks - 1 : 1);
        const int dst = ring_neighbor(rank, ranks, hop);
        const int src = ring_neighbor(rank, ranks, -hop);
        std::vector<mpisim::Request> reqs;
        reqs.push_back(mpi.irecv(src, 400 + hop));
        reqs.push_back(mpi.isend_doubles(dst, 400 + hop, payload));
        mpi.waitall(reqs);
        mpi.compute(kComputeLightNs);
      } else {
        mpi.compute(kComputeLightNs);
      }

      if (iter % 16 == 15) {
        mpi.allreduce(payload, mpisim::ReduceOp::kSum);
      }
    }
    mpi.barrier();
  }
};

}  // namespace

const App* branchy_app() {
  static BranchyApp app;
  return &app;
}

}  // namespace pythia::apps
