// AMR — adaptive mesh refinement skeleton (MPI), adversarially irregular.
//
// Not one of the paper's Table I applications: this workload exists to
// stress exactly where grammar induction degrades (ROADMAP item 3, cf.
// "Learning Highly Recursive Input Grammars"). A block-structured AMR
// code refines and coarsens patches wherever the solution demands it, so
// the per-cycle communication volume — halo exchanges per refinement
// level, flux corrections, regrid collectives — follows the *data*, not a
// static schedule. The refinement trajectory here is drawn from a
// shared-seed RNG (every rank evaluates the same sequence, so sends and
// matching receives agree), random-walking the per-rank patch population
// with occasional refinement bursts and full regrids. Sequitur sees long
// stretches that almost repeat but keep shifting length — the worst case
// for rule reuse.
#include <algorithm>
#include <vector>

#include "apps/app.hpp"
#include "apps/catalog.hpp"
#include "apps/kernels.hpp"
#include "apps/topology.hpp"

namespace pythia::apps {
namespace {

struct AmrParams {
  int cycles;
  int base_patches;   ///< level-0 patches per rank (fixed)
  int max_extra;      ///< cap on refined patches per rank
};

AmrParams amr_params(WorkingSet set, double scale) {
  switch (set) {
    case WorkingSet::kSmall:
      return {scaled(24, scale), 2, 6};
    case WorkingSet::kMedium:
      return {scaled(48, scale), 3, 10};
    case WorkingSet::kLarge:
      return {scaled(96, scale), 4, 16};
  }
  return {24, 2, 6};
}

constexpr double kWorkPerPatchNs = 24'000.0;

class AmrApp final : public App {
 public:
  std::string name() const override { return "AMR"; }
  bool hybrid() const override { return false; }
  int default_ranks() const override { return 8; }

  void run_rank(RankEnv& env, const AppConfig& config) const override {
    auto& mpi = env.mpi;
    const AmrParams params = amr_params(config.set, config.scale);
    const int ranks = mpi.size();
    const int rank = mpi.rank();
    const std::vector<double> halo(32, 1.0);

    // Initial grid + distribution.
    mpisim::Payload grid_spec(256);
    mpi.bcast(grid_spec, 0);
    mpi.barrier();

    // Per-rank refined-patch counts; all ranks track everyone's so the
    // halo partners of a refined patch know a message is coming.
    std::vector<int> extra(static_cast<std::size_t>(ranks), 0);

    for (int cycle = 0; cycle < params.cycles; ++cycle) {
      support::Rng shared(config.seed * 2654435761u +
                          static_cast<std::uint64_t>(cycle) * 69069u);

      // Error estimation: refinement is data-dependent — random-walk each
      // rank's refined-patch population (bursts on a heavy tail).
      for (int r = 0; r < ranks; ++r) {
        const double roll = shared.uniform();
        int delta = 0;
        if (roll < 0.30) delta = 1;
        if (roll < 0.06) delta = 3;  // refinement burst
        if (roll > 0.72) delta = -1;
        extra[static_cast<std::size_t>(r)] =
            std::clamp(extra[static_cast<std::size_t>(r)] + delta, 0,
                       params.max_extra);
      }

      // Advance: level-0 sweep plus one sweep per refined patch (the
      // subcycling a real AMR code pays on finer levels).
      const int my_patches =
          params.base_patches + extra[static_cast<std::size_t>(rank)];
      kernels::ep_gaussian_pairs(env.rng, 500);
      mpi.compute(static_cast<double>(my_patches) * kWorkPerPatchNs);

      // Halo exchange: level-0 halos go to both ring neighbours every
      // cycle (the regular backbone); each refined patch adds one more
      // exchange with an RNG-chosen partner (the irregular overlay).
      const int left = ring_neighbor(rank, ranks, -1);
      const int right = ring_neighbor(rank, ranks, +1);
      if (ranks > 1) {
        std::vector<mpisim::Request> reqs;
        reqs.push_back(mpi.irecv(left, 100 + cycle % 4));
        reqs.push_back(mpi.isend_doubles(right, 100 + cycle % 4, halo));
        mpi.waitall(reqs);
        for (int r = 0; r < ranks; ++r) {
          for (int p = 0; p < extra[static_cast<std::size_t>(r)]; ++p) {
            const int partner =
                (r + 1 + static_cast<int>(shared.below(
                             static_cast<std::uint64_t>(ranks - 1)))) %
                ranks;
            if (rank == r) {
              mpi.send_doubles(partner, 200 + p, halo);
            } else if (rank == partner) {
              mpi.recv(r, 200 + p);
            }
          }
        }
      }

      // Flux correction at coarse/fine boundaries.
      mpi.allreduce(static_cast<double>(my_patches), mpisim::ReduceOp::kSum);

      // Regrid: data-dependent cadence — the whole hierarchy is
      // rebalanced when the refinement drifted far enough.
      if (shared.uniform() < 0.18) {
        mpi.gather(mpisim::Communicator::as_bytes(std::span<const double>(
                       halo.data(), 8)),
                   0);
        mpisim::Payload new_distribution(64);
        mpi.bcast(new_distribution, 0);
        mpi.barrier();
      }
    }
    mpi.barrier();
  }
};

}  // namespace

const App* amr_app() {
  static AmrApp app;
  return &app;
}

}  // namespace pythia::apps
