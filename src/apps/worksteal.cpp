// WorkSteal — work-stealing task graph skeleton (MPI+OpenMP),
// adversarially irregular.
//
// Not a Table I application: a distributed task runtime where ranks drain
// local task deques and, when starved, steal from a victim. Which ranks
// starve, whom they rob, and how much they get depends on the (data-
// dependent) task costs — modelled with a shared-seed RNG so every rank
// agrees on the full steal schedule and posts matching sends/receives.
// The event stream interleaves per-rank regular drain loops with steal
// handshakes at data-driven points, so the grammar cannot settle on one
// loop body — the structure Sequitur finds keeps being interrupted.
#include <algorithm>
#include <vector>

#include "apps/app.hpp"
#include "apps/catalog.hpp"
#include "apps/kernels.hpp"
#include "apps/topology.hpp"

namespace pythia::apps {
namespace {

struct StealParams {
  int rounds;
  int base_tasks;  ///< mean initial tasks per rank per round
};

StealParams steal_params(WorkingSet set, double scale) {
  switch (set) {
    case WorkingSet::kSmall:
      return {scaled(20, scale), 12};
    case WorkingSet::kMedium:
      return {scaled(40, scale), 18};
    case WorkingSet::kLarge:
      return {scaled(80, scale), 28};
  }
  return {20, 12};
}

constexpr double kWorkPerTaskNs = 9'000.0;

class WorkStealApp final : public App {
 public:
  std::string name() const override { return "WorkSteal"; }
  bool hybrid() const override { return true; }
  int default_ranks() const override { return 8; }

  void run_rank(RankEnv& env, const AppConfig& config) const override {
    auto& mpi = env.mpi;
    auto& omp = *env.omp;
    const StealParams params = steal_params(config.set, config.scale);
    const int ranks = mpi.size();
    const int rank = mpi.rank();
    const std::vector<double> task_payload(16, 1.0);

    mpi.barrier();

    for (int round = 0; round < params.rounds; ++round) {
      support::Rng shared(config.seed * 1099511628211ULL +
                          static_cast<std::uint64_t>(round) * 40503u);

      // Skewed initial partition: a few ranks get most of the work
      // (power-of-two-choices in reverse), which is what forces steals.
      std::vector<int> tasks(static_cast<std::size_t>(ranks));
      for (int r = 0; r < ranks; ++r) {
        const double skew = shared.uniform();
        tasks[static_cast<std::size_t>(r)] = std::max(
            1, static_cast<int>(static_cast<double>(params.base_tasks) *
                                (skew < 0.25 ? 2.5 : skew * 1.2)));
      }

      // Drain + steal until the round's tasks are gone. Every rank
      // simulates the global schedule (shared RNG), executing only its
      // own drains and its side of each steal handshake.
      int remaining = 0;
      for (int t : tasks) remaining += t;
      while (remaining > 0) {
        // Each rank drains a chunk of its deque as one parallel region
        // (task costs vary: data-dependent region length).
        for (int r = 0; r < ranks; ++r) {
          const int chunk = std::min(
              tasks[static_cast<std::size_t>(r)],
              1 + static_cast<int>(shared.below(5)));
          if (chunk > 0 && rank == r) {
            kernels::ep_gaussian_pairs(env.rng, 200);
            omp.parallel(10 + chunk,
                         static_cast<double>(chunk) * kWorkPerTaskNs, 0.85);
          }
          tasks[static_cast<std::size_t>(r)] -= chunk;
          remaining -= chunk;
        }

        // Starved ranks steal: victim = richest rank (ties by index),
        // amount = half the victim's deque. The handshake is a request
        // send + task-batch reply.
        for (int r = 0; r < ranks && ranks > 1; ++r) {
          if (tasks[static_cast<std::size_t>(r)] > 0) continue;
          int victim = -1;
          int best = 1;
          for (int v = 0; v < ranks; ++v) {
            if (tasks[static_cast<std::size_t>(v)] > best) {
              best = tasks[static_cast<std::size_t>(v)];
              victim = v;
            }
          }
          if (victim < 0 || victim == r) continue;
          const int loot = tasks[static_cast<std::size_t>(victim)] / 2;
          if (loot == 0) continue;
          if (rank == r) {
            mpi.send_doubles(victim, 300, task_payload);  // steal request
            mpi.recv(victim, 301);                        // task batch
          } else if (rank == victim) {
            mpi.recv(r, 300);
            mpi.send_doubles(r, 301, task_payload);
          }
          tasks[static_cast<std::size_t>(victim)] -= loot;
          tasks[static_cast<std::size_t>(r)] += loot;
        }
      }

      // Round-end quiescence detection.
      mpi.allreduce(0.0, mpisim::ReduceOp::kSum);
      if (round % 8 == 7) mpi.barrier();
    }
    mpi.barrier();
  }
};

}  // namespace

const App* worksteal_app() {
  static WorkStealApp app;
  return &app;
}

}  // namespace pythia::apps
