// NPB BT — block-tridiagonal ADI solver (MPI).
//
// Communication skeleton after the paper's fig. 7, which shows the
// grammar PYTHIA extracts from BT.Large:
//   R -> Bcast^6 B Barrier A^200 Allreduce Allreduce B Reduce Barrier
//   A -> B Isend Irecv [...] Wait^2
//   B -> Irecv Irecv [...] Waitall
// i.e. 6 parameter broadcasts, a barrier, 200 time steps each opening
// with a face exchange (B) followed by the three ADI sweeps, then the
// verification reductions.
#include "apps/app.hpp"
#include "apps/catalog.hpp"
#include "apps/topology.hpp"

namespace pythia::apps {
namespace {

struct BtParams {
  int grid;        // problem is grid^3 (class A=64, B=102, C=162)
  int timesteps;   // 200 for every class; reduced for bench sanity
};

BtParams bt_params(WorkingSet set, double scale) {
  switch (set) {
    case WorkingSet::kSmall:
      return {64, scaled(40, scale)};
    case WorkingSet::kMedium:
      return {102, scaled(40, scale)};
    case WorkingSet::kLarge:
      return {162, scaled(40, scale)};
  }
  return {64, 40};
}

constexpr double kWorkPerCellNs = 18.0;

class BtApp final : public App {
 public:
  std::string name() const override { return "BT"; }
  bool hybrid() const override { return false; }
  int default_ranks() const override { return 8; }

  void run_rank(RankEnv& env, const AppConfig& config) const override {
    auto& mpi = env.mpi;
    const BtParams params = bt_params(config.set, config.scale);
    const Grid3D grid(mpi.rank(), mpi.size());
    const double cells =
        static_cast<double>(params.grid) * params.grid * params.grid /
        static_cast<double>(mpi.size());
    const std::size_t face_doubles = static_cast<std::size_t>(
        std::min(512.0, static_cast<double>(params.grid) * params.grid /
                            64.0));
    const std::vector<double> face(face_doubles, 1.0);

    // Face exchange: the "B" rule of fig. 7 — irecvs first, then isends,
    // then a single Waitall.
    auto exchange = [&] {
      std::vector<mpisim::Request> requests;
      for (int dim = 0; dim < 3; ++dim) {
        for (int dir : {-1, +1}) {
          const int peer = grid.neighbor(dim, dir, /*periodic=*/true);
          if (peer == mpi.rank()) continue;
          requests.push_back(mpi.irecv(peer, 100 + dim));
        }
      }
      for (int dim = 0; dim < 3; ++dim) {
        for (int dir : {-1, +1}) {
          const int peer = grid.neighbor(dim, dir, /*periodic=*/true);
          if (peer == mpi.rank()) continue;
          requests.push_back(mpi.isend_doubles(peer, 100 + dim, face));
        }
      }
      if (!requests.empty()) mpi.waitall(requests);
    };

    // Init: 6 parameter broadcasts + barrier (fig. 7).
    for (int i = 0; i < 6; ++i) {
      mpisim::Payload params_blob(64);
      mpi.bcast(params_blob, 0);
    }
    exchange();
    mpi.barrier();

    // Time stepping: the "A^200" loop.
    for (int step = 0; step < params.timesteps; ++step) {
      exchange();
      mpi.compute(cells * kWorkPerCellNs * 0.4);  // rhs
      for (int dim = 0; dim < 3; ++dim) {
        // ADI sweep along `dim`: pipelined partial solutions.
        const int next = grid.neighbor(dim, +1, true);
        const int prev = grid.neighbor(dim, -1, true);
        mpi.compute(cells * kWorkPerCellNs * 0.2);
        if (next != mpi.rank()) {
          mpisim::Request send = mpi.isend_doubles(next, 200 + dim, face);
          mpisim::Request recv = mpi.irecv(prev, 200 + dim);
          mpi.wait(send);
          mpi.wait(recv);
        }
      }
    }

    // Verification (fig. 7 tail).
    mpi.allreduce(1.0, mpisim::ReduceOp::kSum);
    mpi.allreduce(1.0, mpisim::ReduceOp::kMax);
    exchange();
    mpi.reduce(1.0, mpisim::ReduceOp::kSum, 0);
    mpi.barrier();
  }
};

}  // namespace

const App* bt_app() {
  static BtApp app;
  return &app;
}

}  // namespace pythia::apps
