// LULESH — Sedov blast hydrodynamics proxy (MPI+OpenMP).
//
// The paper's flagship use case (§III-D): "the OpenMP version of Lulesh
// ... contains 30 parallel regions of different sizes". Every time step
// runs the 30 regions — a few large O(s^3) kernels, surface-sized O(s^2)
// kernels, and many tiny fix-up loops — interleaved with the three halo
// exchanges and the dt reduction. The tiny regions are what the adaptive
// thread policy wins on (figs. 10–14).
#include <algorithm>
#include <array>
#include <vector>

#include "apps/app.hpp"
#include "apps/catalog.hpp"
#include "apps/kernels.hpp"
#include "apps/topology.hpp"

namespace pythia::apps {
namespace {

// Work law of one parallel region:
//   work_ns(s) = s3_weight * kZoneWorkNs * s^3
//              + s2_weight * kSurfWorkNs * s^2
//              + fixed_ns
struct RegionSpec {
  double s3_weight;
  double s2_weight;
  double fixed_ns;
  double parallel_fraction;
};

constexpr double kZoneWorkNs = 28.0;
constexpr double kSurfWorkNs = 130.0;

// The 30 regions of a Lulesh time step (region id = index + 1).
constexpr std::array<RegionSpec, 30> kRegions = {{
    // 3 large volume kernels (CalcForceForNodes, CalcKinematics, ...)
    {0.18, 0.0, 0.0, 0.99},
    {0.18, 0.0, 0.0, 0.99},
    {0.18, 0.0, 0.0, 0.99},
    // 5 medium volume kernels (position/velocity integration, q, ...)
    {0.05, 0.0, 0.0, 0.98},
    {0.05, 0.0, 0.0, 0.98},
    {0.05, 0.0, 0.0, 0.98},
    {0.05, 0.0, 0.0, 0.98},
    {0.05, 0.0, 0.0, 0.98},
    // 10 surface kernels (boundary conditions, ghost packing, ...)
    {0.0, 1.4, 0.0, 0.95},
    {0.0, 1.1, 0.0, 0.95},
    {0.0, 1.0, 0.0, 0.95},
    {0.0, 0.9, 0.0, 0.95},
    {0.0, 0.8, 0.0, 0.95},
    {0.0, 0.7, 0.0, 0.95},
    {0.0, 0.6, 0.0, 0.95},
    {0.0, 0.5, 0.0, 0.95},
    {0.0, 0.4, 0.0, 0.95},
    {0.0, 0.3, 0.0, 0.95},
    // 12 tiny fix-up loops (EOS clamps, courant checks, ...)
    {0.0, 0.0, 18'000.0, 0.90},
    {0.0, 0.0, 15'000.0, 0.90},
    {0.0, 0.0, 9'000.0, 0.90},
    {0.0, 0.0, 8'000.0, 0.90},
    {0.0, 0.0, 7'000.0, 0.90},
    {0.0, 0.0, 6'000.0, 0.90},
    {0.0, 0.0, 5'000.0, 0.90},
    {0.0, 0.0, 4'500.0, 0.90},
    {0.0, 0.0, 4'000.0, 0.90},
    {0.0, 0.0, 3'500.0, 0.90},
    {0.0, 0.0, 3'000.0, 0.90},
    {0.0, 0.0, 2'500.0, 0.90},
}};

int lulesh_size(WorkingSet set) {
  switch (set) {
    case WorkingSet::kSmall:
      return 10;  // -s 10
    case WorkingSet::kMedium:
      return 30;  // -s 30
    case WorkingSet::kLarge:
      return 50;  // -s 50
  }
  return 10;
}

class LuleshApp final : public App {
 public:
  std::string name() const override { return "Lulesh"; }
  bool hybrid() const override { return true; }
  int default_ranks() const override { return 8; }

  void run_rank(RankEnv& env, const AppConfig& config) const override {
    run_problem(env, lulesh_size(config.set), config.scale);
  }

  /// Exposed for the figure benches, which sweep the problem size
  /// directly (paper figs. 10/11 use -s in {10..50}).
  static void run_problem(RankEnv& env, int size, double scale) {
    auto& mpi = env.mpi;
    PYTHIA_ASSERT_MSG(env.omp != nullptr, "Lulesh needs an OpenMP runtime");
    auto& omp = *env.omp;
    const Grid3D grid(mpi.rank(), mpi.size());
    const int timesteps = scaled(23 * size, scale * 0.1);
    const double s3 = static_cast<double>(size) * size * size;
    const double s2 = static_cast<double>(size) * size;

    const std::size_t halo_doubles =
        static_cast<std::size_t>(std::min(256.0, 3.0 * s2 / 8.0 + 8));
    const std::vector<double> halo(halo_doubles, 1.0);

    auto exchange = [&](int phase_tag) {
      std::vector<mpisim::Request> requests;
      for (int dim = 0; dim < 3; ++dim) {
        for (int dir : {-1, +1}) {
          const int peer = grid.neighbor(dim, dir, /*periodic=*/false);
          if (peer < 0) continue;
          requests.push_back(mpi.irecv(peer, phase_tag + dim));
        }
      }
      for (int dim = 0; dim < 3; ++dim) {
        for (int dir : {-1, +1}) {
          const int peer = grid.neighbor(dim, dir, /*periodic=*/false);
          if (peer < 0) continue;
          requests.push_back(mpi.isend_doubles(peer, phase_tag + dim, halo));
        }
      }
      if (!requests.empty()) mpi.waitall(requests);
    };

    auto region_work = [&](const RegionSpec& spec) {
      return spec.s3_weight * kZoneWorkNs * s3 +
             spec.s2_weight * kSurfWorkNs * s2 + spec.fixed_ns;
    };

    mpisim::Payload init_blob(96);
    mpi.bcast(init_blob, 0);
    mpi.barrier();

    // Bounded real hydro state: the element phase updates it each step.
    std::vector<double> element_energy(256, 10.0);
    std::vector<double> element_pressure(256, 0.0);

    for (int step = 0; step < timesteps; ++step) {
      // Force phase: the big kernels, then the force halo exchange.
      for (int r = 0; r < 8; ++r) {
        omp.parallel(r + 1, region_work(kRegions[static_cast<std::size_t>(r)]),
                     kRegions[static_cast<std::size_t>(r)].parallel_fraction);
      }
      if (mpi.size() > 1) exchange(600);

      // Position/velocity phase: surface kernels + position halo.
      for (int r = 8; r < 18; ++r) {
        omp.parallel(r + 1, region_work(kRegions[static_cast<std::size_t>(r)]),
                     kRegions[static_cast<std::size_t>(r)].parallel_fraction);
      }
      if (mpi.size() > 1) exchange(610);

      // Element phase: the tiny fix-up loops, then the dt reduction.
      for (int r = 18; r < 30; ++r) {
        omp.parallel(r + 1, region_work(kRegions[static_cast<std::size_t>(r)]),
                     kRegions[static_cast<std::size_t>(r)].parallel_fraction);
      }
      kernels::hydro_energy_update(element_energy, element_pressure,
                                   1.0e-3);
      mpi.allreduce(1.0e-7, mpisim::ReduceOp::kMin);  // dt courant
    }

    mpi.reduce(1.0, mpisim::ReduceOp::kMax, 0);  // final origin energy
    mpi.barrier();
  }
};

}  // namespace

const App* lulesh_app() {
  static LuleshApp app;
  return &app;
}

/// Figure benches need direct access to the size sweep.
void run_lulesh_problem(RankEnv& env, int size, double scale) {
  LuleshApp::run_problem(env, size, scale);
}

}  // namespace pythia::apps
