// NPB EP — embarrassingly parallel random-number kernel (MPI).
//
// Almost pure computation: each rank generates its share of Gaussian
// pairs, then the tiny verification phase runs a handful of collectives.
// In the paper's Table I, EP produces only 384 events across 64 ranks
// (6 per rank) and a single grammar rule.
#include "apps/app.hpp"
#include "apps/catalog.hpp"
#include "apps/kernels.hpp"

namespace pythia::apps {
namespace {

double ep_pairs(WorkingSet set) {
  switch (set) {
    case WorkingSet::kSmall:
      return 1 << 16;  // class A: 2^28 pairs, scaled down
    case WorkingSet::kMedium:
      return 1 << 18;
    case WorkingSet::kLarge:
      return 1 << 20;
  }
  return 1 << 16;
}

constexpr double kWorkPerPairNs = 270.0;

class EpApp final : public App {
 public:
  std::string name() const override { return "EP"; }
  bool hybrid() const override { return false; }
  int default_ranks() const override { return 8; }

  void run_rank(RankEnv& env, const AppConfig& config) const override {
    auto& mpi = env.mpi;
    const double pairs =
        ep_pairs(config.set) * config.scale / mpi.size();

    // The whole kernel: generate pairs, tally the annulus counts. A
    // bounded batch runs for real (self-validating Marsaglia core); the
    // full-size run is modelled in virtual time.
    const kernels::EpResult batch =
        kernels::ep_gaussian_pairs(env.rng, 20'000);
    PYTHIA_ASSERT(batch.accepted > 0);
    mpi.compute(pairs * kWorkPerPairNs);

    // Verification: sx, sy, and the 10 annulus counters (3 allreduces),
    // then a timing reduce and the final barrier — 6 events per rank,
    // matching Table I's 384 events on 64 ranks.
    mpi.allreduce(1.0, mpisim::ReduceOp::kSum);
    mpi.allreduce(1.0, mpisim::ReduceOp::kSum);
    std::vector<double> counts(10, 1.0);
    mpi.allreduce(counts, mpisim::ReduceOp::kSum);
    mpi.reduce(1.0, mpisim::ReduceOp::kMax, 0);
    mpi.barrier();
    mpi.barrier();
  }
};

}  // namespace

const App* ep_app() {
  static EpApp app;
  return &app;
}

}  // namespace pythia::apps
