// Application skeleton framework.
//
// The paper evaluates PYTHIA on 13 MPI / MPI+OpenMP applications
// (§III-A2). This reproduction implements each as a *communication and
// region skeleton*: the exact sequence of MPI calls (with peer/op
// payloads), OpenMP parallel regions (with realistic work laws), problem-
// size scaling, and — where the paper highlights it — the irregularity
// sources (Quicksilver's particle migration, AMG's coarsening). PYTHIA
// consumes event streams, not numerics, so the skeletons reproduce the
// properties Table I and figures 7–9 measure.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "mpisim/guided_comm.hpp"
#include "ompsim/runtime.hpp"
#include "support/rng.hpp"

namespace pythia::iosim {
class PrefetchingReader;
}

namespace pythia::apps {

/// The paper's three problem sizes per application (§III-A2).
enum class WorkingSet { kSmall, kMedium, kLarge };

inline const char* to_string(WorkingSet set) {
  switch (set) {
    case WorkingSet::kSmall:
      return "small";
    case WorkingSet::kMedium:
      return "medium";
    case WorkingSet::kLarge:
      return "large";
  }
  return "?";
}

struct AppConfig {
  WorkingSet set = WorkingSet::kSmall;
  /// Scales iteration counts so the full suite runs in minutes on one
  /// host core (PYTHIA_BENCH_SCALE; 1.0 keeps the reduced defaults,
  /// PYTHIA_FULL raises them to paper fidelity).
  double scale = 1.0;
  std::uint64_t seed = 42;
};

/// Everything one rank needs: the instrumented MPI runtime (behind the
/// consumer-routing GuidedComm facade), the (hybrid apps only) OpenMP
/// runtime sharing the rank's clock, an optional prediction-guided I/O
/// reader, and a deterministic per-rank RNG.
struct RankEnv {
  mpisim::GuidedComm& mpi;
  ompsim::OmpRuntime* omp = nullptr;
  iosim::PrefetchingReader* io = nullptr;
  support::Rng rng;
};

class App {
 public:
  virtual ~App() = default;
  virtual std::string name() const = 0;
  /// True for the MPI+OpenMP applications (AMG, Lulesh, Kripke, miniFE,
  /// Quicksilver).
  virtual bool hybrid() const = 0;
  /// Default rank count in scaled-down benches (the paper used 64 for
  /// NPB and 8 for the hybrid apps on Paravance).
  virtual int default_ranks() const = 0;
  virtual void run_rank(RankEnv& env, const AppConfig& config) const = 0;
};

/// All 13 applications in the paper's Table I order:
/// BT CG EP FT IS LU MG SP AMG Lulesh Kripke miniFE Quicksilver.
const std::vector<const App*>& all_apps();

/// Adversarially irregular workloads (ROADMAP item 3) — NOT in Table I.
/// Data-dependent control flow by construction: AMR-style adaptive
/// refinement, a work-stealing task graph, data-dependent branching with
/// load imbalance. These stress exactly where grammar induction degrades
/// (cf. "Learning Highly Recursive Input Grammars", PAPERS.md).
const std::vector<const App*>& irregular_apps();

/// Lookup by case-sensitive name ("BT", "Lulesh", "AMR", ...) across both
/// catalogs; nullptr if absent.
const App* find_app(std::string_view name);

/// max(1, round(count * scale)) — iteration scaling helper.
inline int scaled(int count, double scale) {
  const int result = static_cast<int>(static_cast<double>(count) * scale);
  return result < 1 ? 1 : result;
}

}  // namespace pythia::apps
