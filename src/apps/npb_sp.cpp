// NPB SP — scalar pentadiagonal ADI solver (MPI).
//
// Structurally BT's sibling with twice the time steps (400) and a
// multi-stage pipelined sweep per dimension (Table I: 357k events,
// 9 rules).
#include <algorithm>
#include <vector>

#include "apps/app.hpp"
#include "apps/catalog.hpp"
#include "apps/topology.hpp"

namespace pythia::apps {
namespace {

struct SpParams {
  int grid;       // class A=64, B=102, C=162
  int timesteps;  // 400 for all classes; reduced for benches
};

SpParams sp_params(WorkingSet set, double scale) {
  switch (set) {
    case WorkingSet::kSmall:
      return {64, scaled(60, scale)};
    case WorkingSet::kMedium:
      return {102, scaled(60, scale)};
    case WorkingSet::kLarge:
      return {162, scaled(60, scale)};
  }
  return {64, 60};
}

constexpr double kWorkPerCellNs = 9.0;

class SpApp final : public App {
 public:
  std::string name() const override { return "SP"; }
  bool hybrid() const override { return false; }
  int default_ranks() const override { return 8; }

  void run_rank(RankEnv& env, const AppConfig& config) const override {
    auto& mpi = env.mpi;
    const SpParams params = sp_params(config.set, config.scale);
    const Grid3D grid(mpi.rank(), mpi.size());
    const double cells =
        static_cast<double>(params.grid) * params.grid * params.grid /
        static_cast<double>(mpi.size());
    const std::size_t face_doubles = static_cast<std::size_t>(std::min(
        384.0, static_cast<double>(params.grid) * params.grid / 96.0));
    const std::vector<double> face(face_doubles, 1.0);

    auto copy_faces = [&] {
      std::vector<mpisim::Request> requests;
      for (int dim = 0; dim < 3; ++dim) {
        const int plus = grid.neighbor(dim, +1, true);
        const int minus = grid.neighbor(dim, -1, true);
        if (plus == mpi.rank()) continue;
        requests.push_back(mpi.irecv(minus, 500 + dim));
        requests.push_back(mpi.irecv(plus, 530 + dim));
        requests.push_back(mpi.isend_doubles(plus, 500 + dim, face));
        requests.push_back(mpi.isend_doubles(minus, 530 + dim, face));
      }
      if (!requests.empty()) mpi.waitall(requests);
    };

    for (int i = 0; i < 4; ++i) {
      mpisim::Payload blob(48);
      mpi.bcast(blob, 0);
    }
    mpi.barrier();

    for (int step = 0; step < params.timesteps; ++step) {
      copy_faces();
      mpi.compute(cells * kWorkPerCellNs * 0.35);  // rhs
      for (int dim = 0; dim < 3; ++dim) {
        // Two-stage pipelined Thomas solve along `dim`.
        const int next = grid.neighbor(dim, +1, true);
        const int prev = grid.neighbor(dim, -1, true);
        mpi.compute(cells * kWorkPerCellNs * 0.15);
        if (next != mpi.rank()) {
          // Forward elimination pipeline.
          mpisim::Request recv = mpi.irecv(prev, 540 + dim);
          mpi.send_doubles(next, 540 + dim, face);
          mpi.wait(recv);
          // Back substitution pipeline (reverse direction).
          mpisim::Request back = mpi.irecv(next, 550 + dim);
          mpi.send_doubles(prev, 550 + dim, face);
          mpi.wait(back);
        }
      }
      mpi.compute(cells * kWorkPerCellNs * 0.1);  // add
    }

    mpi.allreduce(1.0, mpisim::ReduceOp::kSum);
    mpi.reduce(1.0, mpisim::ReduceOp::kMax, 0);
    mpi.barrier();
  }
};

}  // namespace

const App* sp_app() {
  static SpApp app;
  return &app;
}

}  // namespace pythia::apps
