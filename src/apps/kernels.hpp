// Real numeric mini-kernels for the application skeletons.
//
// The skeletons model full-size computation in virtual time, but each
// also executes a bounded *real* instance of its numeric core so that
// (a) Table I's recording overhead competes against genuine work with
// real memory traffic, and (b) every application is self-validating:
// the kernels produce checksums the test suite verifies against
// reference values (in the spirit of the NPB verification stage).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/rng.hpp"

namespace pythia::apps::kernels {

/// NPB EP core: Marsaglia polar method over `pairs` uniform pairs.
/// Returns the accepted-sample sums and the 10 annulus counters.
struct EpResult {
  double sum_x = 0.0;
  double sum_y = 0.0;
  std::uint64_t counts[10] = {};
  std::uint64_t accepted = 0;
};
EpResult ep_gaussian_pairs(support::Rng& rng, std::uint64_t pairs);

/// NPB IS core: counting/bucket sort of 32-bit keys with a bounded key
/// range. Sorts in place; returns a positional checksum.
std::uint64_t bucket_sort(std::vector<std::uint32_t>& keys,
                          std::uint32_t key_range);

/// NPB CG core: one conjugate-gradient step on a deterministic sparse
/// SPD matrix (tridiagonal + wrap, diagonally dominant). Returns the
/// updated residual norm; `x`, `r`, `p` are the usual CG vectors.
struct CgState {
  std::vector<double> x, r, p;
  double rho = 0.0;

  explicit CgState(std::size_t n);
};
double cg_step(CgState& state);

/// Sparse matvec used by cg_step (exposed for testing): y = A p with
/// A = tridiag(-1, 4, -1) plus periodic wrap couplings.
void cg_matvec(const std::vector<double>& p, std::vector<double>& y);

/// NPB MG core: one red-black Gauss-Seidel relaxation sweep of the 3-D
/// Poisson problem on an n^3 grid (unit right-hand side, zero boundary).
/// Returns the residual L2 norm after the sweep.
double mg_relax(std::vector<double>& grid, std::size_t n, int sweeps);

/// Lulesh-like element kernel: a Sedov-style energy update over `zones`
/// elements. Returns the total energy (monotonically decaying).
double hydro_energy_update(std::vector<double>& energy,
                           std::vector<double>& pressure, double dt);

/// FT core: an in-place radix-2 complex FFT of size n (power of two),
/// interleaved re/im. Returns the spectrum checksum (sum of magnitudes).
double fft_radix2(std::vector<double>& interleaved);

}  // namespace pythia::apps::kernels
