// Kripke — deterministic Sn particle transport (MPI+OpenMP).
//
// Wavefront sweeps: for each of the 8 octants, every rank waits for its
// upstream faces, runs the threaded sweep kernel over its zones × groups,
// and forwards to the downstream neighbours. The octant-dependent
// dependency patterns give Kripke a mid-sized grammar (Table I: 46 rules,
// ~10k events).
#include <algorithm>
#include <vector>

#include "apps/app.hpp"
#include "apps/catalog.hpp"
#include "apps/topology.hpp"

namespace pythia::apps {
namespace {

struct KripkeParams {
  int groups;      // --groups 128/512/1024
  int group_sets;  // sweeps pipeline one group-set at a time
  int iterations;  // source iterations
};

KripkeParams kripke_params(WorkingSet set, double scale) {
  switch (set) {
    case WorkingSet::kSmall:
      return {128, 2, scaled(10, scale)};
    case WorkingSet::kMedium:
      return {512, 4, scaled(10, scale)};
    case WorkingSet::kLarge:
      return {1024, 8, scaled(10, scale)};
  }
  return {128, 2, 10};
}

constexpr double kZones = 4096.0;  // zones per rank (--zones scaled)
constexpr double kWorkPerZoneGroupNs = 6.0;

class KripkeApp final : public App {
 public:
  std::string name() const override { return "Kripke"; }
  bool hybrid() const override { return true; }
  int default_ranks() const override { return 8; }

  void run_rank(RankEnv& env, const AppConfig& config) const override {
    auto& mpi = env.mpi;
    auto& omp = *env.omp;
    const KripkeParams params = kripke_params(config.set, config.scale);
    const Grid3D grid(mpi.rank(), mpi.size());
    const double sweep_work =
        kZones * static_cast<double>(params.groups) * kWorkPerZoneGroupNs /
        8.0 / static_cast<double>(params.group_sets);  // per octant/set

    const std::size_t face_doubles = static_cast<std::size_t>(
        std::min(192.0, static_cast<double>(params.groups) / 4.0 + 16));
    const std::vector<double> face(face_doubles, 1.0);

    mpisim::Payload decomp(64);
    mpi.bcast(decomp, 0);
    mpi.barrier();

    for (int iteration = 0; iteration < params.iterations; ++iteration) {
      // Scattering source update (threaded over zones).
      omp.parallel(1, kZones * params.groups * 0.05, 0.95);

      for (int octant = 0; octant < 8; ++octant) {
        // The sweep pipelines one group-set at a time: upstream faces
        // arrive first, then the kernel, then downstream (wavefront).
        // Sweep direction per dimension: bit d of the octant index.
        for (int set = 0; set < params.group_sets; ++set) {
          for (int dim = 0; dim < 3; ++dim) {
            const int dir = (octant >> dim) & 1 ? +1 : -1;
            const int upstream = grid.neighbor(dim, -dir, /*periodic=*/false);
            if (upstream >= 0) mpi.recv(upstream, 900 + octant);
          }
          omp.parallel(10 + octant, sweep_work, 0.97);  // the sweep kernel
          for (int dim = 0; dim < 3; ++dim) {
            const int dir = (octant >> dim) & 1 ? +1 : -1;
            const int downstream = grid.neighbor(dim, dir, /*periodic=*/false);
            if (downstream >= 0) {
              mpi.send_doubles(downstream, 900 + octant, face);
            }
          }
        }
      }

      // Population bookkeeping by one thread, then the convergence
      // check on the scalar flux.
      omp.single(90, 3'000.0);
      std::vector<double> flux = {1.0, 0.5};
      mpi.allreduce(flux, mpisim::ReduceOp::kSum);
    }
    mpi.reduce(1.0, mpisim::ReduceOp::kMax, 0);
    mpi.barrier();
  }
};

}  // namespace

const App* kripke_app() {
  static KripkeApp app;
  return &app;
}

}  // namespace pythia::apps
