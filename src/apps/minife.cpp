// miniFE — implicit finite-element proxy (MPI+OpenMP).
//
// A short threaded assembly phase followed by a regular CG solve: per
// iteration one halo exchange, a threaded matvec, and two dot-product
// allreduces. Highly regular (Table I: 8 rules, 39k events).
#include <algorithm>
#include <vector>

#include "apps/app.hpp"
#include "apps/catalog.hpp"
#include "apps/kernels.hpp"
#include "apps/topology.hpp"

namespace pythia::apps {
namespace {

struct MiniFeParams {
  int nx;          // -nx 100/200/300 (cube)
  int iterations;  // CG iterations (200 in the miniFE default)
};

MiniFeParams minife_params(WorkingSet set, double scale) {
  switch (set) {
    case WorkingSet::kSmall:
      return {100, scaled(60, scale)};
    case WorkingSet::kMedium:
      return {200, scaled(60, scale)};
    case WorkingSet::kLarge:
      return {300, scaled(60, scale)};
  }
  return {100, 60};
}

constexpr double kWorkPerRowNs = 5.5;

class MiniFeApp final : public App {
 public:
  std::string name() const override { return "miniFE"; }
  bool hybrid() const override { return true; }
  int default_ranks() const override { return 8; }

  void run_rank(RankEnv& env, const AppConfig& config) const override {
    auto& mpi = env.mpi;
    auto& omp = *env.omp;
    const MiniFeParams params = minife_params(config.set, config.scale);
    const Grid3D grid(mpi.rank(), mpi.size());
    const double rows = static_cast<double>(params.nx) * params.nx *
                        params.nx /
                        static_cast<double>(mpi.size()) / 10.0;

    const std::size_t halo_doubles = static_cast<std::size_t>(std::min(
        224.0, static_cast<double>(params.nx) * params.nx / 512.0 + 8));
    const std::vector<double> halo(halo_doubles, 1.0);

    auto exchange = [&] {
      std::vector<mpisim::Request> requests;
      for (int dim = 0; dim < 3; ++dim) {
        for (int dir : {-1, +1}) {
          const int peer = grid.neighbor(dim, dir, /*periodic=*/false);
          if (peer < 0) continue;
          requests.push_back(mpi.irecv(peer, 950 + dim));
        }
      }
      for (int dim = 0; dim < 3; ++dim) {
        for (int dir : {-1, +1}) {
          const int peer = grid.neighbor(dim, dir, /*periodic=*/false);
          if (peer < 0) continue;
          requests.push_back(mpi.isend_doubles(peer, 950 + dim, halo));
        }
      }
      if (!requests.empty()) mpi.waitall(requests);
    };

    mpisim::Payload mesh_blob(64);
    mpi.bcast(mesh_blob, 0);
    mpi.barrier();

    // Assembly: 8 threaded element batches + the boundary fix-up.
    for (int batch = 0; batch < 8; ++batch) {
      omp.parallel(1 + batch, rows * kWorkPerRowNs * 2.5, 0.97);
    }
    omp.parallel(9, rows * kWorkPerRowNs * 0.1, 0.85);  // dirichlet BC
    mpi.barrier();

    // Exchange-list setup: gather the halo layout at rank 0 and scatter
    // the plan.
    const double plan = static_cast<double>(mpi.rank());
    mpi.gather(mpisim::Communicator::as_bytes({&plan, 1}), 0);
    mpisim::Payload plan_blob(32);
    mpi.bcast(plan_blob, 0);

    // CG solve (a bounded real solver instance runs alongside the
    // virtual-time model).
    kernels::CgState solver(120);
    for (int iteration = 0; iteration < params.iterations; ++iteration) {
      if (kernels::cg_step(solver) < 1e-10) {
        solver = kernels::CgState(120);
      }
      if (mpi.size() > 1) exchange();
      omp.parallel(10, rows * kWorkPerRowNs, 0.97);  // matvec
      mpi.allreduce(1.0, mpisim::ReduceOp::kSum);    // p . Ap
      omp.parallel(11, rows * kWorkPerRowNs * 0.2, 0.95);  // axpys
      mpi.allreduce(1.0, mpisim::ReduceOp::kSum);    // r . r
      if (iteration % 20 == 0) {
        // Periodic convergence report.
        mpi.reduce(1.0, mpisim::ReduceOp::kMax, 0);
      }
    }
    mpi.reduce(1.0, mpisim::ReduceOp::kSum, 0);  // final norm
    mpi.barrier();
  }
};

}  // namespace

const App* minife_app() {
  static MiniFeApp app;
  return &app;
}

}  // namespace pythia::apps
