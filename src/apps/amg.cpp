// AMG — parallel algebraic multigrid solver (MPI+OpenMP).
//
// Two phases: an irregular *setup* (coarsening: the communication
// partners and message counts depend on the matrix, modelled with a
// shared-seed RNG so all ranks agree on who talks to whom), then a
// regular *solve* of V-cycles. The irregular setup is why AMG's grammar
// is large (Table I: 150 rules) and its predictions harder (fig. 8).
#include <algorithm>
#include <vector>

#include "apps/app.hpp"
#include "apps/catalog.hpp"
#include "apps/topology.hpp"

namespace pythia::apps {
namespace {

struct AmgParams {
  int n;        // per-dimension points per rank (-n 100/150/200)
  int levels;   // multigrid hierarchy depth
  int cycles;   // solve V-cycles
};

AmgParams amg_params(WorkingSet set, double scale) {
  switch (set) {
    case WorkingSet::kSmall:
      return {100, 8, scaled(10, scale)};
    case WorkingSet::kMedium:
      return {150, 9, scaled(10, scale)};
    case WorkingSet::kLarge:
      return {200, 10, scaled(10, scale)};
  }
  return {100, 8, 10};
}

constexpr double kWorkPerPointNs = 20.0;

class AmgApp final : public App {
 public:
  std::string name() const override { return "AMG"; }
  bool hybrid() const override { return true; }
  int default_ranks() const override { return 8; }

  void run_rank(RankEnv& env, const AppConfig& config) const override {
    auto& mpi = env.mpi;
    auto& omp = *env.omp;
    const AmgParams params = amg_params(config.set, config.scale);
    const double fine_points = static_cast<double>(params.n) * params.n *
                               params.n / 100.0;  // scaled-down law

    auto level_points = [&](int level) {
      double points = fine_points;
      for (int l = 0; l < level; ++l) points /= 4.0;  // ~coarsening factor
      return std::max(points, 512.0);
    };

    const std::vector<double> packet(48, 1.0);

    // The irregular exchange: a shared-seed RNG gives every rank the same
    // view of which (src, dst) pairs communicate at this level, so sends
    // and receives match without a handshake — like hypre's assumed
    // partition setup traffic.
    auto irregular_exchange = [&](support::Rng& shared, int messages) {
      for (int m = 0; m < messages; ++m) {
        const int src = static_cast<int>(shared.below(mpi.size()));
        const int dst =
            (src + 1 + static_cast<int>(shared.below(mpi.size() - 1))) %
            mpi.size();
        if (mpi.rank() == src) {
          mpi.send_doubles(dst, 700 + m, packet);
        } else if (mpi.rank() == dst) {
          mpi.recv(src, 700 + m);
        }
      }
    };

    mpisim::Payload blob(64);
    mpi.bcast(blob, 0);
    mpi.barrier();

    // --- setup phase: coarsen level by level (irregular) ---------------
    for (int level = 0; level < params.levels; ++level) {
      support::Rng shared(config.seed * 1000003u +
                          static_cast<std::uint64_t>(level));
      if (mpi.size() > 1) {
        // Enough traffic that every rank participates several times with
        // level-dependent partners (hypre's setup is communication-heavy).
        const int messages =
            mpi.size() * (4 + static_cast<int>(shared.below(4 + level % 3)));
        irregular_exchange(shared, messages);
      }
      // Interpolation operator construction (threaded), finished by a
      // single-thread galerkin product setup.
      omp.parallel(100 + level, level_points(level) * kWorkPerPointNs * 3,
                   0.9);
      omp.single(400 + level, 2'000.0);
      mpi.allreduce(1.0, mpisim::ReduceOp::kSum);  // coarse-grid size
    }

    // --- solve phase: V-cycles ------------------------------------------
    // The per-level communication partners come out of the coarsening and
    // differ level to level (same shared-RNG trick: all ranks agree).
    // They are fixed across cycles, so the solve is *predictable* but its
    // grammar carries one distinct pattern per level.
    std::vector<std::vector<std::pair<int, int>>> level_pairs(
        static_cast<std::size_t>(params.levels));
    for (int level = 0; level < params.levels; ++level) {
      support::Rng shared(config.seed * 424243u +
                          static_cast<std::uint64_t>(level));
      const int pair_count =
          mpi.size() > 1
              ? mpi.size() / 2 + static_cast<int>(shared.below(mpi.size()))
              : 0;
      for (int i = 0; i < pair_count; ++i) {
        const int src = static_cast<int>(shared.below(mpi.size()));
        const int dst =
            (src + 1 + static_cast<int>(shared.below(mpi.size() - 1))) %
            mpi.size();
        level_pairs[static_cast<std::size_t>(level)].emplace_back(src, dst);
      }
    }

    for (int cycle = 0; cycle < params.cycles; ++cycle) {
      for (int level = 0; level < params.levels; ++level) {  // down
        for (const auto& [src, dst] :
             level_pairs[static_cast<std::size_t>(level)]) {
          if (mpi.rank() == src) {
            mpi.send_doubles(dst, 800 + level, packet);
          } else if (mpi.rank() == dst) {
            mpi.recv(src, 800 + level);
          }
        }
        omp.parallel(200 + level, level_points(level) * kWorkPerPointNs,
                     0.92);  // smoother
      }
      for (int level = params.levels - 1; level >= 0; --level) {  // up
        omp.parallel(300 + level, level_points(level) * kWorkPerPointNs,
                     0.92);
      }
      mpi.allreduce(1.0, mpisim::ReduceOp::kSum);  // residual norm
    }
    mpi.barrier();
  }
};

}  // namespace

const App* amg_app() {
  static AmgApp app;
  return &app;
}

}  // namespace pythia::apps
