// NPB IS — integer bucket sort (MPI).
//
// Ten ranking iterations, each with a bucket-size allreduce, a key
// alltoall (modelling MPI_Alltoallv), and local ranking work; a reduce +
// barrier verification tail (Table I: 2493 events over 64 ranks).
#include <algorithm>
#include <vector>

#include "apps/app.hpp"
#include "apps/catalog.hpp"
#include "apps/kernels.hpp"

namespace pythia::apps {
namespace {

double is_keys(WorkingSet set) {
  switch (set) {
    case WorkingSet::kSmall:
      return 1 << 23;  // class A
    case WorkingSet::kMedium:
      return 1 << 25;  // class B
    case WorkingSet::kLarge:
      return 1 << 27;  // class C
  }
  return 1 << 23;
}

constexpr int kIterations = 10;
constexpr double kWorkPerKeyNs = 0.25;

class IsApp final : public App {
 public:
  std::string name() const override { return "IS"; }
  bool hybrid() const override { return false; }
  int default_ranks() const override { return 8; }

  void run_rank(RankEnv& env, const AppConfig& config) const override {
    auto& mpi = env.mpi;
    const double local_keys =
        is_keys(config.set) * config.scale / mpi.size();
    const std::size_t chunk_bytes = static_cast<std::size_t>(
        std::min(4096.0, local_keys / mpi.size() / 64.0 + 16.0));

    mpisim::Payload seed_blob(16);
    mpi.bcast(seed_blob, 0);

    const int iterations = scaled(kIterations, config.scale);
    for (int iteration = 0; iteration < iterations; ++iteration) {
      // Real bounded instance of the ranking core.
      std::vector<std::uint32_t> sample(2048);
      for (std::uint32_t& key : sample) {
        key = static_cast<std::uint32_t>(env.rng.below(256));
      }
      kernels::bucket_sort(sample, 256);
      mpi.compute(local_keys * kWorkPerKeyNs * 0.4);  // local bucketing
      std::vector<double> bucket_sizes(16, 1.0);
      mpi.allreduce(bucket_sizes, mpisim::ReduceOp::kSum);
      std::vector<mpisim::Payload> keys(static_cast<std::size_t>(mpi.size()),
                                        mpisim::Payload(chunk_bytes));
      mpi.alltoall(keys);  // key redistribution (alltoallv in NPB)
      mpi.compute(local_keys * kWorkPerKeyNs * 0.6);  // local ranking
    }

    // Full sort + verification.
    mpi.compute(local_keys * kWorkPerKeyNs);
    mpi.reduce(1.0, mpisim::ReduceOp::kSum, 0);
    mpi.barrier();
  }
};

}  // namespace

const App* is_app() {
  static IsApp app;
  return &app;
}

}  // namespace pythia::apps
