// NPB MG — multigrid V-cycle solver (MPI).
//
// Each iteration descends and re-ascends the grid hierarchy, exchanging
// ghost boundaries in all three dimensions at every level, with residual
// allreduces; the per-level structure gives MG its mid-sized grammar
// (Table I: 14 rules, 610k events).
#include <algorithm>
#include <vector>

#include "apps/app.hpp"
#include "apps/catalog.hpp"
#include "apps/kernels.hpp"
#include "apps/topology.hpp"

namespace pythia::apps {
namespace {

struct MgParams {
  int grid;    // class A=256, B=256, C=512 (cube)
  int levels;  // log2(grid)
  int niter;   // A=4, B=20, C=20
};

MgParams mg_params(WorkingSet set, double scale) {
  switch (set) {
    case WorkingSet::kSmall:
      return {256, 8, scaled(4, scale)};
    case WorkingSet::kMedium:
      return {256, 8, scaled(20, scale)};
    case WorkingSet::kLarge:
      return {512, 9, scaled(20, scale)};
  }
  return {256, 8, 4};
}

constexpr double kWorkPerPointNs = 0.08;

class MgApp final : public App {
 public:
  std::string name() const override { return "MG"; }
  bool hybrid() const override { return false; }
  int default_ranks() const override { return 8; }

  void run_rank(RankEnv& env, const AppConfig& config) const override {
    auto& mpi = env.mpi;
    const MgParams params = mg_params(config.set, config.scale);
    const Grid3D grid(mpi.rank(), mpi.size());

    // Ghost exchange at a given level: smaller grids, smaller messages.
    auto exchange = [&](int level) {
      const std::size_t face = static_cast<std::size_t>(
          std::min(128, (params.grid >> (params.levels - level)) + 4));
      const std::vector<double> ghost(face, 1.0);
      for (int dim = 0; dim < 3; ++dim) {
        const int plus = grid.neighbor(dim, +1, true);
        const int minus = grid.neighbor(dim, -1, true);
        if (plus == mpi.rank()) continue;
        mpisim::Request recv_minus = mpi.irecv(minus, 400 + dim);
        mpisim::Request recv_plus = mpi.irecv(plus, 430 + dim);
        mpi.send_doubles(plus, 400 + dim, ghost);
        mpi.send_doubles(minus, 430 + dim, ghost);
        mpi.wait(recv_minus);
        mpi.wait(recv_plus);
      }
    };

    auto level_points = [&](int level) {
      const double edge =
          static_cast<double>(params.grid >> (params.levels - level));
      return edge * edge * edge / static_cast<double>(mpi.size());
    };

    mpisim::Payload blob(32);
    mpi.bcast(blob, 0);
    mpi.barrier();

    // Initial residual norm.
    exchange(params.levels);
    mpi.compute(level_points(params.levels) * kWorkPerPointNs);
    mpi.allreduce(1.0, mpisim::ReduceOp::kSum);

    // At coarse levels MG concentrates the residual grid on a shrinking
    // subset of ranks: the exchange pattern differs per level, which is
    // what gives MG its mid-sized grammar.
    auto coarse_exchange = [&](int level) {
      // Active ranks halve with each coarsening below level 4.
      const int active = std::max(1, mpi.size() >> (4 - level));
      if (mpi.rank() >= active) return;  // idle at this level
      const int peer = (mpi.rank() + 1) % active;
      if (peer == mpi.rank()) return;
      mpisim::Request recv =
          mpi.irecv((mpi.rank() + active - 1) % active, 460 + level);
      mpi.send_doubles(peer, 460 + level, std::vector<double>(16, 1.0));
      mpi.wait(recv);
    };

    for (int iteration = 0; iteration < params.niter; ++iteration) {
      // Downward: restrict to coarser grids.
      for (int level = params.levels; level >= 4; --level) {
        exchange(level);
        mpi.compute(level_points(level) * kWorkPerPointNs);
      }
      for (int level = 3; level >= 1; --level) {
        coarse_exchange(level);
        mpi.compute(level_points(level) * kWorkPerPointNs);
      }
      // Coarsest solve: a real bounded relaxation.
      std::vector<double> coarse(10 * 10 * 10, 0.0);
      kernels::mg_relax(coarse, 10, 2);
      mpi.compute(64.0 * kWorkPerPointNs);
      // Upward: prolongate and smooth.
      for (int level = 1; level <= 3; ++level) {
        coarse_exchange(level);
        mpi.compute(level_points(level) * kWorkPerPointNs);
      }
      for (int level = 4; level <= params.levels; ++level) {
        exchange(level);
        mpi.compute(level_points(level) * kWorkPerPointNs * 2);
      }
      mpi.allreduce(1.0, mpisim::ReduceOp::kSum);  // residual norm
    }
    mpi.allreduce(1.0, mpisim::ReduceOp::kMax);  // final error norm
    mpi.barrier();
  }
};

}  // namespace

const App* mg_app() {
  static MgApp app;
  return &app;
}

}  // namespace pythia::apps
