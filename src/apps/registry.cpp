#include <string_view>

#include "apps/app.hpp"
#include "apps/catalog.hpp"

namespace pythia::apps {

const std::vector<const App*>& all_apps() {
  static const std::vector<const App*> apps = {
      bt_app(),     cg_app(),     ep_app(),     ft_app(),     is_app(),
      lu_app(),     mg_app(),     sp_app(),     amg_app(),    lulesh_app(),
      kripke_app(), minife_app(), quicksilver_app(),
  };
  return apps;
}

const std::vector<const App*>& irregular_apps() {
  static const std::vector<const App*> apps = {
      amr_app(),
      worksteal_app(),
      branchy_app(),
  };
  return apps;
}

const App* find_app(std::string_view name) {
  for (const App* app : all_apps()) {
    if (app->name() == name) return app;
  }
  for (const App* app : irregular_apps()) {
    if (app->name() == name) return app;
  }
  return nullptr;
}

}  // namespace pythia::apps
