// Cartesian rank topology helpers for the application skeletons.
#pragma once

#include <array>
#include <cmath>

#include "support/assert.hpp"

namespace pythia::apps {

/// Decomposes `ranks` into a near-cubic 3-D processor grid (largest
/// factors first), like MPI_Dims_create.
struct Grid3D {
  std::array<int, 3> dims{1, 1, 1};
  std::array<int, 3> coords{0, 0, 0};
  int rank = 0;
  int ranks = 1;

  Grid3D(int rank_in, int ranks_in) : rank(rank_in), ranks(ranks_in) {
    PYTHIA_ASSERT(rank_in >= 0 && rank_in < ranks_in);
    int remaining = ranks_in;
    for (int d = 0; d < 3; ++d) {
      const int target = static_cast<int>(std::round(
          std::pow(static_cast<double>(remaining), 1.0 / (3 - d))));
      int best = 1;
      for (int f = 1; f <= remaining; ++f) {
        if (remaining % f == 0 &&
            std::abs(f - target) < std::abs(best - target)) {
          best = f;
        }
      }
      dims[static_cast<std::size_t>(d)] = best;
      remaining /= best;
    }
    // Row-major coordinates.
    int r = rank_in;
    coords[2] = r % dims[2];
    r /= dims[2];
    coords[1] = r % dims[1];
    coords[0] = r / dims[1];
  }

  int rank_of(int x, int y, int z) const {
    return (x * dims[1] + y) * dims[2] + z;
  }

  /// Neighbour along dimension `dim` in direction `dir` (+1/-1); -1 when
  /// at the boundary (non-periodic).
  int neighbor(int dim, int dir, bool periodic = false) const {
    std::array<int, 3> c = coords;
    c[static_cast<std::size_t>(dim)] += dir;
    const int extent = dims[static_cast<std::size_t>(dim)];
    if (c[static_cast<std::size_t>(dim)] < 0 ||
        c[static_cast<std::size_t>(dim)] >= extent) {
      if (!periodic) return -1;
      c[static_cast<std::size_t>(dim)] =
          (c[static_cast<std::size_t>(dim)] + extent) % extent;
    }
    return rank_of(c[0], c[1], c[2]);
  }
};

/// 1-D ring neighbour.
inline int ring_neighbor(int rank, int ranks, int dir) {
  return (rank + dir + ranks) % ranks;
}

}  // namespace pythia::apps
