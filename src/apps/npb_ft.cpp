// NPB FT — 3-D FFT PDE solver (MPI).
//
// Per iteration: evolve in Fourier space, a global transpose
// (MPI_Alltoall), and a checksum (MPI_Allreduce). Few events per rank
// (Table I: 3072 events over 64 ranks).
#include <algorithm>
#include <vector>

#include "apps/app.hpp"
#include "apps/catalog.hpp"
#include "apps/kernels.hpp"

namespace pythia::apps {
namespace {

struct FtParams {
  double points;  // grid points (A=256^2*128, B=512^2*256, C=512^3)
  int niter;      // A=6, B=20, C=20
};

FtParams ft_params(WorkingSet set, double scale) {
  switch (set) {
    case WorkingSet::kSmall:
      return {256.0 * 256.0 * 128.0, scaled(6, scale)};
    case WorkingSet::kMedium:
      return {512.0 * 256.0 * 256.0, scaled(20, scale)};
    case WorkingSet::kLarge:
      return {512.0 * 512.0 * 512.0, scaled(20, scale)};
  }
  return {256.0 * 256.0 * 128.0, 6};
}

constexpr double kWorkPerPointNs = 0.035;  // a few flops per point per pass

class FtApp final : public App {
 public:
  std::string name() const override { return "FT"; }
  bool hybrid() const override { return false; }
  int default_ranks() const override { return 8; }

  void run_rank(RankEnv& env, const AppConfig& config) const override {
    auto& mpi = env.mpi;
    const FtParams params = ft_params(config.set, config.scale);
    const double local_points =
        params.points / static_cast<double>(mpi.size());
    const std::size_t chunk_doubles = static_cast<std::size_t>(std::min(
        256.0, local_points / static_cast<double>(mpi.size()) / 1024.0 + 8));

    auto transpose = [&] {
      std::vector<mpisim::Payload> chunks(
          static_cast<std::size_t>(mpi.size()),
          mpisim::Payload(chunk_doubles * sizeof(double)));
      mpi.alltoall(chunks);
    };

    // Setup: parameter broadcasts and the initial forward FFT.
    for (int i = 0; i < 3; ++i) {
      mpisim::Payload blob(48);
      mpi.bcast(blob, 0);
    }
    mpi.barrier();
    mpi.compute(local_points * kWorkPerPointNs * 3);  // 3 FFT passes
    transpose();
    mpi.compute(local_points * kWorkPerPointNs);

    for (int iteration = 0; iteration < params.niter; ++iteration) {
      // Real bounded FFT pencil.
      std::vector<double> pencil(2 * 256);
      for (std::size_t i = 0; i < pencil.size(); ++i) {
        pencil[i] = env.rng.uniform() - 0.5;
      }
      kernels::fft_radix2(pencil);
      mpi.compute(local_points * kWorkPerPointNs);      // evolve
      transpose();                                      // global transpose
      mpi.compute(local_points * kWorkPerPointNs * 2);  // inverse FFT
      std::vector<double> checksum = {1.0, 2.0};
      mpi.allreduce(checksum, mpisim::ReduceOp::kSum);  // checksum
    }
    mpi.barrier();
  }
};

}  // namespace

const App* ft_app() {
  static FtApp app;
  return &app;
}

}  // namespace pythia::apps
