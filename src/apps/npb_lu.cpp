// NPB LU — SSOR solver with a pipelined wavefront (MPI).
//
// The heaviest communicator of the suite (Table I: 18.2M events): every
// SSOR iteration sweeps the k-planes twice (lower and upper triangular
// phases), exchanging small boundary messages with the north/west and
// south/east neighbours at every plane.
#include <algorithm>
#include <vector>

#include "apps/app.hpp"
#include "apps/catalog.hpp"
#include "apps/topology.hpp"

namespace pythia::apps {
namespace {

struct LuParams {
  int grid;    // class A=64, B=102, C=162 (cube)
  int itmax;   // 250 for all classes; reduced for benches
  int planes;  // k-planes actually pipelined per sweep (scaled)
};

LuParams lu_params(WorkingSet set, double scale) {
  switch (set) {
    case WorkingSet::kSmall:
      return {64, scaled(25, scale), 16};
    case WorkingSet::kMedium:
      return {102, scaled(25, scale), 26};
    case WorkingSet::kLarge:
      return {162, scaled(25, scale), 40};
  }
  return {64, 25, 16};
}

constexpr double kWorkPerCellNs = 22.0;

class LuApp final : public App {
 public:
  std::string name() const override { return "LU"; }
  bool hybrid() const override { return false; }
  int default_ranks() const override { return 8; }

  void run_rank(RankEnv& env, const AppConfig& config) const override {
    auto& mpi = env.mpi;
    const LuParams params = lu_params(config.set, config.scale);
    // LU uses a 2-D processor decomposition of the x/y plane.
    const int px = mpi.size() >= 4 ? mpi.size() / 2 : mpi.size();
    const int py = mpi.size() / px;
    const int cx = mpi.rank() % px;
    const int cy = mpi.rank() / px;
    const int north = cy > 0 ? mpi.rank() - px : -1;
    const int south = cy < py - 1 ? mpi.rank() + px : -1;
    const int west = cx > 0 ? mpi.rank() - 1 : -1;
    const int east = cx < px - 1 ? mpi.rank() + 1 : -1;

    const double plane_cells = static_cast<double>(params.grid) *
                               params.grid /
                               static_cast<double>(mpi.size());
    const std::size_t edge_doubles = static_cast<std::size_t>(
        std::min(128.0, static_cast<double>(params.grid)));
    const std::vector<double> edge(edge_doubles, 1.0);

    mpisim::Payload blob(64);
    mpi.bcast(blob, 0);
    mpi.barrier();

    for (int iteration = 0; iteration < params.itmax; ++iteration) {
      // Lower-triangular sweep: wavefront from the north-west corner.
      for (int k = 0; k < params.planes; ++k) {
        if (north >= 0) mpi.recv(north, 10);
        if (west >= 0) mpi.recv(west, 11);
        mpi.compute(plane_cells * kWorkPerCellNs * 0.5);
        if (south >= 0) mpi.send_doubles(south, 10, edge);
        if (east >= 0) mpi.send_doubles(east, 11, edge);
      }
      // Upper-triangular sweep: wavefront from the south-east corner.
      for (int k = 0; k < params.planes; ++k) {
        if (south >= 0) mpi.recv(south, 12);
        if (east >= 0) mpi.recv(east, 13);
        mpi.compute(plane_cells * kWorkPerCellNs * 0.5);
        if (north >= 0) mpi.send_doubles(north, 12, edge);
        if (west >= 0) mpi.send_doubles(west, 13, edge);
      }
      // RHS update: the exchange_3 boundary swap (a different pattern
      // from the pipelined sweeps: non-blocking, all four directions).
      {
        std::vector<mpisim::Request> requests;
        for (const int peer : {north, south, west, east}) {
          if (peer >= 0) requests.push_back(mpi.irecv(peer, 14));
        }
        for (const int peer : {north, south, west, east}) {
          if (peer >= 0) requests.push_back(mpi.isend_doubles(peer, 14, edge));
        }
        if (!requests.empty()) mpi.waitall(requests);
      }
      mpi.compute(plane_cells * params.planes * kWorkPerCellNs * 0.2);
      if (iteration % 5 == 0) {
        std::vector<double> residual(5, 0.1);
        mpi.allreduce(residual, mpisim::ReduceOp::kSum);
      }
    }

    std::vector<double> norms(5, 0.1);
    mpi.allreduce(norms, mpisim::ReduceOp::kSum);
    mpi.barrier();
  }
};

}  // namespace

const App* lu_app() {
  static LuApp app;
  return &app;
}

}  // namespace pythia::apps
