// Factory functions for the 13 evaluated applications (one per module).
#pragma once

namespace pythia::apps {

class App;

// NAS Parallel Benchmarks 3.3.1 (MPI).
const App* bt_app();
const App* cg_app();
const App* ep_app();
const App* ft_app();
const App* is_app();
const App* lu_app();
const App* mg_app();
const App* sp_app();

// MPI+OpenMP proxy applications.
const App* amg_app();
const App* lulesh_app();
const App* kripke_app();
const App* minife_app();
const App* quicksilver_app();

// Adversarially irregular workloads (irregular_apps(); ROADMAP item 3).
const App* amr_app();
const App* worksteal_app();
const App* branchy_app();

struct RankEnv;

/// Runs Lulesh at an explicit problem size (-s N); used by the figure
/// benches that sweep sizes outside the Small/Medium/Large presets.
void run_lulesh_problem(RankEnv& env, int size, double scale);

}  // namespace pythia::apps
