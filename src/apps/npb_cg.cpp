// NPB CG — conjugate gradient with irregular sparse matvec (MPI).
//
// Each outer iteration runs 25 inner CG steps; every inner step does the
// matvec transpose exchange (log2(P) butterfly partners) plus the two
// inner-product allreduces. The varied partner sequence is what gives CG
// its richer grammar (~15 rules in the paper's Table I).
#include <algorithm>
#include <vector>

#include "apps/app.hpp"
#include "apps/catalog.hpp"
#include "apps/kernels.hpp"

namespace pythia::apps {
namespace {

struct CgParams {
  int na;       // matrix order (A=14000, B=75000, C=150000)
  int niter;    // outer iterations (A=15, B/C=75); reduced for benches
};

CgParams cg_params(WorkingSet set, double scale) {
  switch (set) {
    case WorkingSet::kSmall:
      return {14000, scaled(8, scale)};
    case WorkingSet::kMedium:
      return {75000, scaled(12, scale)};
    case WorkingSet::kLarge:
      return {150000, scaled(12, scale)};
  }
  return {14000, 8};
}

constexpr int kInnerSteps = 25;
constexpr double kWorkPerRowNs = 12.0;

class CgApp final : public App {
 public:
  std::string name() const override { return "CG"; }
  bool hybrid() const override { return false; }
  int default_ranks() const override { return 8; }

  void run_rank(RankEnv& env, const AppConfig& config) const override {
    auto& mpi = env.mpi;
    const CgParams params = cg_params(config.set, config.scale);
    const double rows =
        static_cast<double>(params.na) / static_cast<double>(mpi.size());
    const std::size_t chunk = static_cast<std::size_t>(
        std::min(256.0, rows / 16.0) + 1.0);
    const std::vector<double> vec(chunk, 0.5);

    // Butterfly partner list (recursive-halving transpose).
    std::vector<int> partners;
    for (int bit = 1; bit < mpi.size(); bit <<= 1) {
      partners.push_back(mpi.rank() ^ bit);
    }

    mpisim::Payload setup(32);
    mpi.bcast(setup, 0);
    mpi.barrier();

    // Bounded real instance of the solver core, advanced with the
    // virtual-time model (restarted when it converges).
    kernels::CgState solver(255);

    // Untimed warm-up CG call, as in the NPB kernel (one inner solve).
    for (std::size_t p = 0; p < partners.size(); ++p) {
      const int partner = partners[p];
      if (partner >= mpi.size()) continue;
      mpisim::Request recv = mpi.irecv(partner, 290 + static_cast<int>(p));
      mpi.send_doubles(partner, 290 + static_cast<int>(p), vec);
      mpi.wait(recv);
    }
    mpi.allreduce(1.0, mpisim::ReduceOp::kSum);
    mpi.barrier();

    for (int iteration = 0; iteration < params.niter; ++iteration) {
      for (int inner = 0; inner < kInnerSteps; ++inner) {
        // Sparse matvec: exchange partial vectors with each butterfly
        // partner, accumulating as we go. The matvec transpose uses a
        // second, reversed exchange for q (as npbs cg does).
        for (std::size_t p = 0; p < partners.size(); ++p) {
          const int partner = partners[p];
          if (partner >= mpi.size()) continue;
          mpisim::Request recv = mpi.irecv(partner, 300 + static_cast<int>(p));
          mpi.send_doubles(partner, 300 + static_cast<int>(p), vec);
          mpi.wait(recv);
          mpi.compute(rows * kWorkPerRowNs / 8.0);
        }
        for (std::size_t p = partners.size(); p-- > 0;) {
          const int partner = partners[p];
          if (partner >= mpi.size()) continue;
          mpisim::Request recv = mpi.irecv(partner, 320 + static_cast<int>(p));
          mpi.send_doubles(partner, 320 + static_cast<int>(p), vec);
          mpi.wait(recv);
        }
        if (kernels::cg_step(solver) < 1e-10) {
          solver = kernels::CgState(255);
        }
        // rho = r.r and alpha denominator p.q.
        mpi.allreduce(1.0, mpisim::ReduceOp::kSum);
        mpi.compute(rows * kWorkPerRowNs / 4.0);
        mpi.allreduce(1.0, mpisim::ReduceOp::kSum);
      }
      // Residual norm + zeta at the end of the outer iteration.
      mpi.allreduce(1.0, mpisim::ReduceOp::kMax);
      mpi.allreduce(1.0, mpisim::ReduceOp::kSum);
      mpi.reduce(1.0, mpisim::ReduceOp::kMax, 0);
    }
    mpi.barrier();
  }
};

}  // namespace

const App* cg_app() {
  static CgApp app;
  return &app;
}

}  // namespace pythia::apps
