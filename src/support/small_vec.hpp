// Small vector with inline storage for the prediction hot path.
//
// Progress sequences are as deep as the grammar is nested — almost always a
// handful of levels. Storing their elements inline means copying, advancing
// and re-anchoring paths in Predictor::observe() touches no allocator at
// all; only pathologically deep grammars spill to the heap, and a spilled
// SmallVec reuses its heap capacity on later assignments.
//
// Restricted to trivially copyable element types (elements move via
// memcpy; no destructors run on removal).
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>

#include "support/assert.hpp"

namespace pythia::support {

template <typename T, std::size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>);
  static_assert(N >= 1);

 public:
  SmallVec() = default;
  ~SmallVec() {
    if (data_ != inline_data()) ::operator delete(data_);
  }

  SmallVec(const SmallVec& other) { assign(other.data_, other.size_); }
  SmallVec& operator=(const SmallVec& other) {
    if (this != &other) assign(other.data_, other.size_);
    return *this;
  }

  SmallVec(SmallVec&& other) noexcept { steal(other); }
  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) {
      if (data_ != inline_data()) ::operator delete(data_);
      steal(other);
    }
    return *this;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return capacity_; }

  T* data() { return data_; }
  const T* data() const { return data_; }
  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  void clear() { size_ = 0; }

  void push_back(const T& value) {
    if (size_ == capacity_) reserve(capacity_ * 2);
    data_[size_++] = value;
  }

  void pop_back() {
    PYTHIA_ASSERT(size_ > 0);
    --size_;
  }

  /// Replaces the contents with [src, src + count). Reuses existing
  /// storage whenever it is large enough.
  void assign(const T* src, std::size_t count) {
    if (count > capacity_) reserve_exact(count);
    std::memmove(data_, src, count * sizeof(T));
    size_ = count;
  }

  /// Drops the first `count` elements (the shallow levels of a path).
  void erase_prefix(std::size_t count) {
    PYTHIA_ASSERT(count <= size_);
    if (count == 0) return;
    std::memmove(data_, data_ + count, (size_ - count) * sizeof(T));
    size_ -= count;
  }

  /// Inserts at the front (descending one grammar level).
  void push_front(const T& value) {
    if (size_ == capacity_) reserve(capacity_ * 2);
    std::memmove(data_ + 1, data_, size_ * sizeof(T));
    data_[0] = value;
    ++size_;
  }

  void reserve(std::size_t wanted) {
    if (wanted > capacity_) reserve_exact(wanted);
  }

  friend bool operator==(const SmallVec& a, const SmallVec& b) {
    if (a.size_ != b.size_) return false;
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (!(a.data_[i] == b.data_[i])) return false;
    }
    return true;
  }

 private:
  T* inline_data() { return reinterpret_cast<T*>(inline_); }

  void reserve_exact(std::size_t wanted) {
    T* grown = static_cast<T*>(::operator new(wanted * sizeof(T)));
    std::memcpy(grown, data_, size_ * sizeof(T));
    if (data_ != inline_data()) ::operator delete(data_);
    data_ = grown;
    capacity_ = wanted;
  }

  void steal(SmallVec& other) {
    if (other.data_ == other.inline_data()) {
      data_ = inline_data();
      capacity_ = N;
      size_ = other.size_;
      std::memcpy(data_, other.data_, size_ * sizeof(T));
    } else {
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.data_ = other.inline_data();
      other.capacity_ = N;
    }
    other.size_ = 0;
  }

  alignas(T) unsigned char inline_[N * sizeof(T)];
  T* data_ = inline_data();
  std::size_t size_ = 0;
  std::size_t capacity_ = N;
};

}  // namespace pythia::support
