// Hash helpers shared across the library (digram index, timing tables).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace pythia::support {

/// 64-bit mix (Stafford variant 13) — used to finalize combined hashes.
constexpr std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value) {
  return mix64(seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                       (seed >> 2)));
}

/// Hash a contiguous run of 64-bit words (e.g. a progress-path suffix key).
inline std::uint64_t hash_words(const std::uint64_t* words, std::size_t n,
                                std::uint64_t seed = 0x2545f4914f6cdd1dULL) {
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) h = hash_combine(h, words[i]);
  return h;
}

}  // namespace pythia::support
