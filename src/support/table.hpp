// Minimal ASCII table formatter for benchmark output.
//
// Benches print paper-style tables (Table I, figure series) to stdout; this
// keeps column alignment without dragging in a formatting dependency.
#pragma once

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace pythia::support {

class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  std::string to_string() const {
    std::vector<std::size_t> width(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& row) {
      for (std::size_t i = 0; i < row.size() && i < width.size(); ++i)
        width[i] = std::max(width[i], row[i].size());
    };
    widen(header_);
    for (const auto& row : rows_) widen(row);

    std::string out;
    auto emit = [&](const std::vector<std::string>& row) {
      out += "|";
      for (std::size_t i = 0; i < width.size(); ++i) {
        const std::string& cell = i < row.size() ? row[i] : std::string{};
        out += " " + cell + std::string(width[i] - cell.size(), ' ') + " |";
      }
      out += "\n";
    };
    auto rule = [&] {
      out += "|";
      for (std::size_t w : width) out += std::string(w + 2, '-') + "|";
      out += "\n";
    };
    emit(header_);
    rule();
    for (const auto& row : rows_) emit(row);
    return out;
  }

  void print() const { std::fputs(to_string().c_str(), stdout); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style helper returning std::string (for table cells).
inline std::string strf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

inline std::string strf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out(needed > 0 ? static_cast<std::size_t>(needed) : 0, '\0');
  if (needed > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  va_end(args);
  return out;
}

}  // namespace pythia::support
