// EINTR-safe POSIX file I/O with errno context.
//
// Every loop here exists because a transient signal (profilers, timers,
// MPI progress threads) can interrupt a syscall mid-operation: a trace
// save that dies with an opaque "short write" on EINTR is a robustness
// bug, not an I/O error. All helpers retry EINTR and surface failures as
// a pythia::Status carrying the operation, the path and strerror(errno),
// so callers can log something actionable.
//
// The durability vocabulary used by trace_io and the session layer:
//   * write_file()        — plain create/truncate/write (no rename, no
//                           fsync); a crash can leave a truncated file.
//   * write_file_atomic() — write-temp -> (fsync) -> rename(2) -> fsync
//                           of the parent directory. Readers see either
//                           the old file or the complete new one, never a
//                           torn intermediate.
//   * fsync_fd/fsync_path — flush OS buffers to stable storage (needed
//                           for power-loss durability; process death
//                           alone never loses completed write(2)s).
#pragma once

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "support/status.hpp"

namespace pythia::support {

/// "write 'path': Interrupted system call (errno 4)" — built from the
/// current errno, so call it before anything else can clobber it.
inline Status errno_status(const char* op, const std::string& path) {
  const int saved = errno;
  return Status::io_error(std::string(op) + " '" + path +
                          "': " + std::strerror(saved) + " (errno " +
                          std::to_string(saved) + ")");
}

inline int open_noeintr(const char* path, int flags, mode_t mode = 0644) {
  int fd;
  do {
    fd = ::open(path, flags, mode);
  } while (fd < 0 && errno == EINTR);
  return fd;
}

/// POSIX leaves the descriptor state unspecified when close(2) returns
/// EINTR; on Linux the descriptor is guaranteed released, so retrying
/// would race with another thread reusing the fd. EINTR is success here.
inline int close_noeintr(int fd) {
  const int rc = ::close(fd);
  return (rc != 0 && errno == EINTR) ? 0 : rc;
}

inline Status fsync_fd(int fd, const std::string& path) {
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  return rc == 0 ? Status() : errno_status("fsync", path);
}

/// Writes all of `size` bytes, retrying short writes and EINTR.
inline Status full_write(int fd, const void* data, std::size_t size,
                         const std::string& path) {
  const auto* p = static_cast<const unsigned char*>(data);
  while (size > 0) {
    const ssize_t n = ::write(fd, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_status("write", path);
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return Status();
}

/// Reads the whole file into `out` (replacing its contents).
inline Status read_file(const std::string& path,
                        std::vector<unsigned char>& out) {
  const int fd = open_noeintr(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return errno_status("open", path);
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const Status status = errno_status("stat", path);
    close_noeintr(fd);
    return status;
  }
  out.clear();
  out.resize(static_cast<std::size_t>(st.st_size));
  std::size_t offset = 0;
  while (offset < out.size()) {
    const ssize_t n = ::read(fd, out.data() + offset, out.size() - offset);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = errno_status("read", path);
      close_noeintr(fd);
      return status;
    }
    if (n == 0) {  // file shrank underneath us; return what exists
      out.resize(offset);
      break;
    }
    offset += static_cast<std::size_t>(n);
  }
  if (close_noeintr(fd) != 0) return errno_status("close", path);
  return Status();
}

/// Plain create/truncate/write; optionally fsync'd. Not atomic — a crash
/// mid-write leaves a truncated file (use write_file_atomic when readers
/// may race a crash).
inline Status write_file(const std::string& path, const void* data,
                         std::size_t size, bool durable = false) {
  const int fd = open_noeintr(path.c_str(),
                              O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC);
  if (fd < 0) return errno_status("open", path);
  Status status = full_write(fd, data, size, path);
  if (status.ok() && durable) status = fsync_fd(fd, path);
  if (close_noeintr(fd) != 0 && status.ok()) {
    status = errno_status("close", path);
  }
  return status;
}

/// Directory of `path` ("." when the path has no slash).
inline std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// fsync of a directory, making a rename inside it durable.
inline Status fsync_path(const std::string& path) {
  const int fd = open_noeintr(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return errno_status("open", path);
  Status status = fsync_fd(fd, path);
  close_noeintr(fd);
  return status;
}

/// Write-temp -> (fsync) -> atomic rename -> (fsync directory). With
/// `durable` false the fsyncs are skipped: still atomic against process
/// crashes, not against power loss.
inline Status write_file_atomic(const std::string& path, const void* data,
                                std::size_t size, bool durable = true) {
  // Pid-unique temp name: concurrent writers of the same path must not
  // share a temp file, or one process renames (steals) the temp the
  // other is still writing and the loser's rename fails with ENOENT.
  const std::string temp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  Status status = write_file(temp, data, size, durable);
  if (!status.ok()) {
    std::remove(temp.c_str());
    return status;
  }
  if (::rename(temp.c_str(), path.c_str()) != 0) {
    status = errno_status("rename", temp);
    std::remove(temp.c_str());
    return status;
  }
  if (durable) {
    const Status dir_status = fsync_path(parent_dir(path));
    // A failed directory fsync leaves the rename itself intact; surface
    // the weaker durability but do not undo the write.
    if (!dir_status.ok()) return dir_status;
  }
  return Status();
}

/// Appends `size` bytes to `path` (created if missing), optionally
/// fsync'd — the manifest append primitive.
inline Status append_file(const std::string& path, const void* data,
                          std::size_t size, bool durable = true) {
  const int fd = open_noeintr(path.c_str(),
                              O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC);
  if (fd < 0) return errno_status("open", path);
  Status status = full_write(fd, data, size, path);
  if (status.ok() && durable) status = fsync_fd(fd, path);
  if (close_noeintr(fd) != 0 && status.ok()) {
    status = errno_status("close", path);
  }
  return status;
}

inline bool path_exists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

/// Read-only memory map of a whole file — the zero-copy trace load path.
/// The kernel pages data in on demand, so "loading" a mapped trace costs
/// O(pages actually touched), not O(file size), and concurrent readers of
/// the same file share one physical copy of the page cache.
///
/// Move-only RAII: the mapping (and with it every pointer into data())
/// lives until the MappedFile is destroyed or moved from. The descriptor
/// is closed right after mmap(2) — the mapping keeps the file alive.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile() { reset(); }
  MappedFile(MappedFile&& other) noexcept
      : data_(other.data_), size_(other.size_) {
    other.data_ = nullptr;
    other.size_ = 0;
  }
  MappedFile& operator=(MappedFile&& other) noexcept {
    if (this != &other) {
      reset();
      data_ = other.data_;
      size_ = other.size_;
      other.data_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Maps `path` read-only. An empty file maps to a valid zero-length
  /// view (data() == nullptr, size() == 0) — mmap(2) rejects length 0.
  static Result<MappedFile> open(const std::string& path) {
    const int fd = open_noeintr(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return errno_status("open", path);
    struct stat st {};
    if (::fstat(fd, &st) != 0) {
      const Status status = errno_status("stat", path);
      close_noeintr(fd);
      return status;
    }
    MappedFile mapped;
    mapped.size_ = static_cast<std::size_t>(st.st_size);
    if (mapped.size_ > 0) {
      void* addr =
          ::mmap(nullptr, mapped.size_, PROT_READ, MAP_PRIVATE, fd, 0);
      if (addr == MAP_FAILED) {
        const Status status = errno_status("mmap", path);
        close_noeintr(fd);
        return status;
      }
      mapped.data_ = static_cast<const unsigned char*>(addr);
      // The serving access pattern is random probes into the compiled
      // tables; readahead would fault in pages nobody asked for.
      (void)::madvise(addr, mapped.size_, MADV_RANDOM);
    }
    close_noeintr(fd);
    return mapped;
  }

  /// Hints the kernel that `[offset, offset+length)` will be accessed
  /// soon (page-granular; best effort).
  void will_need(std::size_t offset, std::size_t length) const {
    if (data_ == nullptr || offset >= size_) return;
    length = std::min(length, size_ - offset);
    const std::size_t page = 4096;
    const std::size_t begin = offset & ~(page - 1);
    (void)::madvise(const_cast<unsigned char*>(data_) + begin,
                    offset + length - begin, MADV_WILLNEED);
  }

  const unsigned char* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool valid() const { return data_ != nullptr; }

 private:
  void reset() {
    if (data_ != nullptr) {
      (void)::munmap(const_cast<unsigned char*>(data_), size_);
      data_ = nullptr;
      size_ = 0;
    }
  }

  const unsigned char* data_ = nullptr;
  std::size_t size_ = 0;
};

inline bool is_directory(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

/// mkdir that tolerates the directory already existing.
inline Status make_dir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) return Status();
  return errno_status("mkdir", path);
}

/// Recursive mkdir -p, tolerant of concurrent creators (EEXIST at any
/// level is success — harness ranks race to create a shared parent).
inline Status make_dirs(const std::string& path) {
  std::size_t pos = 0;
  while (pos < path.size()) {
    pos = path.find('/', pos + 1);
    if (pos == std::string::npos) break;
    const std::string prefix = path.substr(0, pos);
    if (prefix.empty() || is_directory(prefix)) continue;
    if (Status status = make_dir(prefix); !status.ok()) return status;
  }
  return make_dir(path);
}

}  // namespace pythia::support
