// Bounded single-producer/single-consumer ring buffer.
//
// The engine's record path puts one of these between each instrumented
// application thread (producer) and its recorder worker (consumer): the
// application pays an enqueue — two relaxed loads, a store, a release
// store — and the grammar reduction happens elsewhere. The design is the
// classic cached-index SPSC queue:
//
//   - head_ (consumer cursor) and tail_ (producer cursor) live on their
//     own cache lines so the two sides never false-share;
//   - each side keeps a *cached* copy of the other side's cursor on its
//     own line and only re-reads the shared atomic when the cached value
//     says the ring looks full (producer) or empty (consumer), so the
//     steady state makes no cross-core loads at all;
//   - capacity is rounded up to a power of two and indexing is masked,
//     cursors increase monotonically (no wrap handling, no ABA).
//
// Memory ordering: the producer publishes a slot with a release store of
// tail_; the consumer acquires tail_ before reading slots. Symmetrically
// the consumer releases head_ after consuming and the producer acquires
// it before overwriting. T must be trivially copyable — slots are reused
// in place and batch-popped by plain copy.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "support/assert.hpp"

namespace pythia::support {

inline constexpr std::size_t kCacheLineBytes = 64;

template <typename T>
class SpscRing {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  explicit SpscRing(std::size_t capacity) {
    PYTHIA_ASSERT_MSG(capacity >= 2, "SpscRing capacity must be >= 2");
    std::size_t pow2 = 1;
    while (pow2 < capacity) pow2 <<= 1;
    mask_ = pow2 - 1;
    slots_.resize(pow2);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Producer side. Returns false when the ring is full (caller decides:
  /// spin, yield, or drop-and-count).
  bool try_push(const T& value) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ > mask_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ > mask_) return false;
    }
    slots_[tail & mask_] = value;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: pops up to `max` items into `out`, in order. Returns
  /// the number popped (0 when empty). One acquire load of the producer
  /// cursor covers the whole batch.
  std::size_t pop_batch(T* out, std::size_t max) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (cached_tail_ == head) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (cached_tail_ == head) return 0;
    }
    std::size_t n = static_cast<std::size_t>(cached_tail_ - head);
    if (n > max) n = max;
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = slots_[(head + i) & mask_];
    }
    head_.store(head + n, std::memory_order_release);
    return n;
  }

  /// Occupancy estimate; exact only when called by the producer or the
  /// consumer between their own operations (the other side may move it
  /// concurrently). Used for telemetry, never for correctness.
  std::size_t size_approx() const {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? static_cast<std::size_t>(tail - head) : 0;
  }

  bool empty_approx() const { return size_approx() == 0; }

 private:
  // Consumer line: its own cursor plus the cached producer cursor.
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> head_{0};
  std::uint64_t cached_tail_ = 0;
  // Producer line.
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> tail_{0};
  std::uint64_t cached_head_ = 0;

  alignas(kCacheLineBytes) std::size_t mask_ = 0;
  std::vector<T> slots_;
};

}  // namespace pythia::support
