// Streaming statistics accumulators used by the timing model and the
// benchmark harness.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace pythia::support {

/// Welford-style running mean/variance with min/max, O(1) space.
class RunningStat {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  void merge(const RunningStat& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double total = static_cast<double>(count_ + other.count_);
    const double delta = other.mean_ - mean_;
    const double new_mean =
        mean_ + delta * static_cast<double>(other.count_) / total;
    m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                           static_cast<double>(other.count_) / total;
    mean_ = new_mean;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Collects samples for percentile queries (benchmark reporting only).
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); }
  bool empty() const { return samples_.empty(); }
  std::size_t size() const { return samples_.size(); }

  double percentile(double p) {
    if (samples_.empty()) return 0.0;
    std::sort(samples_.begin(), samples_.end());
    const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
  }

  double mean() const {
    if (samples_.empty()) return 0.0;
    double sum = 0.0;
    for (double s : samples_) sum += s;
    return sum / static_cast<double>(samples_.size());
  }

  double min() {
    return samples_.empty()
               ? 0.0
               : *std::min_element(samples_.begin(), samples_.end());
  }
  double max() {
    return samples_.empty()
               ? 0.0
               : *std::max_element(samples_.begin(), samples_.end());
  }

 private:
  std::vector<double> samples_;
};

}  // namespace pythia::support
