// Kill-point fault injection: named crash sites in durability-critical
// code paths.
//
// Crash-safe code is only as good as the crashes it was tested against.
// The journal and checkpoint writers call crash_point("name") at every
// boundary where a real crash would be interesting (segment seal, before
// and after the checkpoint rename, after the manifest append). Disarmed —
// the production state — a crash point is a single relaxed atomic load.
// A test (or the PYTHIA_CRASH_POINT environment variable, for subprocess
// kill matrices) arms one named point with a hit countdown and an action:
//
//   kSigkill — raise SIGKILL: the process dies exactly like an OOM kill,
//              no unwinding, no flushing (subprocess tests);
//   kExit    — _exit(137): same, but usable where a signal is awkward;
//   kThrow   — throw CrashPointHit: the *test* catches it and abandons
//              the session object in place, simulating an in-process
//              crash without losing the test runner.
//
// Destructors of the crash-safe types deliberately do not flush their
// user-space buffers (close()/sync() are the durability API), so the
// kThrow unwind observes the same on-disk state a real crash would leave.
#pragma once

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

namespace pythia::support {

enum class CrashAction { kSigkill, kExit, kThrow };

/// Thrown by an armed crash point with action kThrow. Deliberately not
/// derived from std::exception: generic catch (const std::exception&)
/// recovery blocks must not swallow an injected crash.
struct CrashPointHit {
  std::string point;
};

namespace detail {

struct CrashPointState {
  std::mutex mutex;
  bool armed = false;
  std::string point;
  std::uint64_t countdown = 0;
  CrashAction action = CrashAction::kThrow;
};

inline CrashPointState& crash_state() {
  static CrashPointState state;
  return state;
}

inline std::atomic<bool>& crash_armed_flag() {
  static std::atomic<bool> armed{false};
  return armed;
}

inline void crash_point_fire(const char* name, CrashAction action) {
  switch (action) {
    case CrashAction::kSigkill:
      ::kill(::getpid(), SIGKILL);
      ::_exit(137);  // unreachable; SIGKILL cannot be handled
    case CrashAction::kExit:
      ::_exit(137);
    case CrashAction::kThrow:
      throw CrashPointHit{name};
  }
}

inline void crash_point_slow(const char* name) {
  auto& state = crash_state();
  CrashAction action;
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    if (!state.armed || state.point != name) return;
    if (state.countdown > 1) {
      --state.countdown;
      return;
    }
    state.armed = false;
    crash_armed_flag().store(false, std::memory_order_relaxed);
    action = state.action;
  }
  crash_point_fire(name, action);
}

}  // namespace detail

/// Instrumentation site. One relaxed atomic load when nothing is armed.
inline void crash_point(const char* name) {
  if (detail::crash_armed_flag().load(std::memory_order_relaxed)) {
    detail::crash_point_slow(name);
  }
}

/// Arms `point` to fire on its `after_hits`-th hit (1 = next hit).
inline void arm_crash_point(std::string point, std::uint64_t after_hits = 1,
                            CrashAction action = CrashAction::kThrow) {
  auto& state = detail::crash_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.armed = true;
  state.point = std::move(point);
  state.countdown = after_hits == 0 ? 1 : after_hits;
  state.action = action;
  detail::crash_armed_flag().store(true, std::memory_order_relaxed);
}

inline void disarm_crash_points() {
  auto& state = detail::crash_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.armed = false;
  detail::crash_armed_flag().store(false, std::memory_order_relaxed);
}

inline bool crash_point_armed() {
  return detail::crash_armed_flag().load(std::memory_order_relaxed);
}

/// Arms from PYTHIA_CRASH_POINT="name:count[:kill|exit|throw]" (count
/// defaults to 1, action to kill — the subprocess-matrix default).
/// Returns true when a point was armed.
inline bool arm_crash_point_from_env() {
  const char* spec = std::getenv("PYTHIA_CRASH_POINT");
  if (spec == nullptr || *spec == '\0') return false;
  const std::string text(spec);
  const std::size_t first = text.find(':');
  std::string name = text.substr(0, first);
  std::uint64_t count = 1;
  CrashAction action = CrashAction::kSigkill;
  if (first != std::string::npos) {
    const std::size_t second = text.find(':', first + 1);
    const std::string count_text =
        text.substr(first + 1, second == std::string::npos
                                   ? std::string::npos
                                   : second - first - 1);
    if (!count_text.empty()) {
      count = std::strtoull(count_text.c_str(), nullptr, 10);
    }
    if (second != std::string::npos) {
      const std::string action_text = text.substr(second + 1);
      if (action_text == "exit") action = CrashAction::kExit;
      if (action_text == "throw") action = CrashAction::kThrow;
    }
  }
  if (name.empty()) return false;
  arm_crash_point(std::move(name), count, action);
  return true;
}

}  // namespace pythia::support
