// Environment-variable knobs shared by benches and tests.
//
//   PYTHIA_BENCH_SCALE  — float, scales iteration counts (default 1.0; the
//                         benches already use reduced "paper-shape" sizes).
//   PYTHIA_FULL         — when set to 1, use paper-fidelity problem sizes.
//   PYTHIA_BENCH_REPS   — repetitions per measured configuration.
#pragma once

#include <cstdlib>
#include <string>

namespace pythia::support {

inline double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  return end != value ? parsed : fallback;
}

inline long env_long(const char* name, long fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  return end != value ? parsed : fallback;
}

inline bool env_flag(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr && std::string(value) != "0" &&
         std::string(value) != "";
}

/// Global scale factor applied to workload iteration counts in benches.
inline double bench_scale() { return env_double("PYTHIA_BENCH_SCALE", 1.0); }

/// Paper-fidelity mode (much slower; sizes close to the paper's).
inline bool full_fidelity() { return env_flag("PYTHIA_FULL"); }

inline int bench_reps(int fallback) {
  return static_cast<int>(env_long("PYTHIA_BENCH_REPS", fallback));
}

}  // namespace pythia::support
