// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the per-section
// checksum of the PYTHIA02 trace format and the per-record checksum of
// the record-session journal.
//
// Slicing-by-8 table-driven implementation (8 KiB of compile-time
// tables, 8 bytes per iteration). Trace sections are read once at
// startup, but the journal checksums a ~24-byte frame for *every*
// recorded event, so the byte-at-a-time loop would dominate the
// journaled append path. The 8-byte inner step loads words little-endian
// (matching the on-disk formats; PYTHIA targets little-endian hosts).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace pythia::support {

namespace detail {

constexpr std::array<std::array<std::uint32_t, 256>, 8> make_crc32_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xedb88320u : 0u);
    }
    tables[0][i] = crc;
  }
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      tables[k][i] =
          (tables[k - 1][i] >> 8) ^ tables[0][tables[k - 1][i] & 0xffu];
    }
  }
  return tables;
}

inline constexpr std::array<std::array<std::uint32_t, 256>, 8> kCrc32Tables =
    make_crc32_tables();

}  // namespace detail

/// Incremental update: feed `crc32_init()` through one or more
/// `crc32_update` calls, then `crc32_final`.
constexpr std::uint32_t crc32_init() { return 0xffffffffu; }

inline std::uint32_t crc32_update(std::uint32_t state, const void* data,
                                  std::size_t size) {
  const auto& t = detail::kCrc32Tables;
  const auto* bytes = static_cast<const unsigned char*>(data);
  while (size >= 8) {
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, bytes, 4);
    std::memcpy(&hi, bytes + 4, 4);
    lo ^= state;
    state = t[7][lo & 0xffu] ^ t[6][(lo >> 8) & 0xffu] ^
            t[5][(lo >> 16) & 0xffu] ^ t[4][lo >> 24] ^ t[3][hi & 0xffu] ^
            t[2][(hi >> 8) & 0xffu] ^ t[1][(hi >> 16) & 0xffu] ^
            t[0][hi >> 24];
    bytes += 8;
    size -= 8;
  }
  for (std::size_t i = 0; i < size; ++i) {
    state = t[0][(state ^ bytes[i]) & 0xffu] ^ (state >> 8);
  }
  return state;
}

constexpr std::uint32_t crc32_final(std::uint32_t state) {
  return state ^ 0xffffffffu;
}

/// One-shot checksum of a buffer.
inline std::uint32_t crc32(const void* data, std::size_t size) {
  return crc32_final(crc32_update(crc32_init(), data, size));
}

}  // namespace pythia::support
