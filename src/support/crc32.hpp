// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the per-section
// checksum of the PYTHIA02 trace format.
//
// Plain table-driven implementation: trace sections are read once at
// startup, so simplicity and zero dependencies beat throughput tricks.
// The table is built at compile time.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace pythia::support {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xedb88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();

}  // namespace detail

/// Incremental update: feed `crc32_init()` through one or more
/// `crc32_update` calls, then `crc32_final`.
constexpr std::uint32_t crc32_init() { return 0xffffffffu; }

inline std::uint32_t crc32_update(std::uint32_t state, const void* data,
                                  std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    state = detail::kCrc32Table[(state ^ bytes[i]) & 0xffu] ^ (state >> 8);
  }
  return state;
}

constexpr std::uint32_t crc32_final(std::uint32_t state) {
  return state ^ 0xffffffffu;
}

/// One-shot checksum of a buffer.
inline std::uint32_t crc32(const void* data, std::size_t size) {
  return crc32_final(crc32_update(crc32_init(), data, size));
}

}  // namespace pythia::support
