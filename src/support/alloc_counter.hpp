// Pluggable counting-allocator hook.
//
// The zero-allocation claims on the record/predict hot paths are *measured*,
// not assumed: link the `pythia_alloc_hook` library into a binary and every
// global operator new/delete bumps the counters below. The hook is a
// separate translation unit, so the core library and ordinary binaries pay
// nothing; benches (`bench/regress`) and the allocation tests link it to
// report bytes-allocated-per-event and to assert steady-state zero.
//
// Counters are relaxed atomics: cross-thread totals are eventually
// consistent, which is all a benchmark needs.
#pragma once

#include <atomic>
#include <cstdint>

namespace pythia::support {

namespace detail {
inline std::atomic<std::uint64_t> g_alloc_count{0};
inline std::atomic<std::uint64_t> g_dealloc_count{0};
inline std::atomic<std::uint64_t> g_alloc_bytes{0};
inline std::atomic<bool> g_alloc_hook_linked{false};
}  // namespace detail

struct AllocSnapshot {
  std::uint64_t allocations = 0;
  std::uint64_t deallocations = 0;
  std::uint64_t bytes = 0;

  friend AllocSnapshot operator-(const AllocSnapshot& a,
                                 const AllocSnapshot& b) {
    return {a.allocations - b.allocations,
            a.deallocations - b.deallocations, a.bytes - b.bytes};
  }
};

/// Current totals since process start (all zero when the hook TU is not
/// linked into this binary).
inline AllocSnapshot alloc_snapshot() {
  return {detail::g_alloc_count.load(std::memory_order_relaxed),
          detail::g_dealloc_count.load(std::memory_order_relaxed),
          detail::g_alloc_bytes.load(std::memory_order_relaxed)};
}

/// True when the counting operator new/delete overrides are linked in —
/// callers use this to distinguish "zero allocations" from "not measuring".
inline bool alloc_hook_active() {
  return detail::g_alloc_hook_linked.load(std::memory_order_relaxed);
}

}  // namespace pythia::support
