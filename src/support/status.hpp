// Status / Result<T>: the no-throw, no-abort error model of the library
// boundary.
//
// PYTHIA is linked *into* runtime systems (MPI, OpenMP shims); a corrupt
// trace file or an API misuse at the boundary must never terminate or
// unwind through the host application (§II-B2 tolerates unexpected
// events). Operations that consume untrusted input therefore return a
// Status (or a Result<T> carrying a value), and the caller decides how to
// degrade — typically to Oracle Mode::kOff, i.e. vanilla behaviour.
//
// Internal invariant violations (bugs) still abort via PYTHIA_ASSERT;
// Status is for *conditions*, not for programming errors.
#pragma once

#include <optional>
#include <string>
#include <utility>

#include "support/assert.hpp"

namespace pythia {

enum class StatusCode {
  kOk = 0,
  kCorrupt,       ///< structurally invalid input (checksum, framing, shape)
  kIoError,       ///< the operating system failed us (open, read, write)
  kUnsupported,   ///< recognized but unreadable (e.g. future format version)
  kInvalidState,  ///< operation does not apply in the current mode
  kDeadlineExceeded,  ///< gave up: overall time budget spent (client caps)
};

inline const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kCorrupt:
      return "corrupt";
    case StatusCode::kIoError:
      return "io-error";
    case StatusCode::kUnsupported:
      return "unsupported";
    case StatusCode::kInvalidState:
      return "invalid-state";
    case StatusCode::kDeadlineExceeded:
      return "deadline-exceeded";
  }
  return "?";
}

/// A cheap, copyable success-or-error value. The OK status carries no
/// allocation; error statuses carry a human-readable message.
class Status {
 public:
  Status() = default;  // OK — default construction is success

  static Status corrupt(std::string message) {
    return Status(StatusCode::kCorrupt, std::move(message));
  }
  static Status io_error(std::string message) {
    return Status(StatusCode::kIoError, std::move(message));
  }
  static Status unsupported(std::string message) {
    return Status(StatusCode::kUnsupported, std::move(message));
  }
  static Status invalid_state(std::string message) {
    return Status(StatusCode::kInvalidState, std::move(message));
  }
  static Status deadline_exceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }

  /// Error description; empty for OK.
  const std::string& message() const { return message_; }

  /// "corrupt: rule count out of bounds" — for logs and CLI errors.
  std::string to_string() const {
    if (ok()) return "ok";
    return std::string(pythia::to_string(code_)) + ": " + message_;
  }

 private:
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A Status plus, on success, a value. `Result<Trace> r = Trace::try_load(p);
/// if (r.ok()) use(r.value());` — no exceptions cross the boundary.
template <typename T>
class Result {
 public:
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    PYTHIA_ASSERT_MSG(!status_.ok(), "Result from OK status needs a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Value access asserts success — check ok() first.
  T& value() {
    PYTHIA_ASSERT_MSG(ok(), "Result::value() on error");
    return *value_;
  }
  const T& value() const {
    PYTHIA_ASSERT_MSG(ok(), "Result::value() on error");
    return *value_;
  }
  /// Moves the value out (one-shot).
  T take() {
    PYTHIA_ASSERT_MSG(ok(), "Result::take() on error");
    return std::move(*value_);
  }

  /// Success value, or `fallback` on error — the one-line degrade path.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace pythia
