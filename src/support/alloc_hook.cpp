// Global operator new/delete overrides that feed the counters declared in
// support/alloc_counter.hpp. Link `pythia_alloc_hook` into a target to
// activate them; see that header for the contract.
#include <cstdlib>
#include <new>

#include "support/alloc_counter.hpp"

namespace {

struct HookMarker {
  HookMarker() {
    pythia::support::detail::g_alloc_hook_linked.store(
        true, std::memory_order_relaxed);
  }
};
HookMarker g_marker;

void* counted_alloc(std::size_t size) {
  using namespace pythia::support::detail;
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  void* ptr = std::malloc(size > 0 ? size : 1);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* counted_alloc_aligned(std::size_t size, std::size_t alignment) {
  using namespace pythia::support::detail;
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  // aligned_alloc requires size to be a multiple of alignment.
  const std::size_t rounded = (size + alignment - 1) / alignment * alignment;
  void* ptr = std::aligned_alloc(alignment, rounded > 0 ? rounded : alignment);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void counted_free(void* ptr) noexcept {
  if (ptr == nullptr) return;
  pythia::support::detail::g_dealloc_count.fetch_add(
      1, std::memory_order_relaxed);
  std::free(ptr);
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new(std::size_t size, std::align_val_t alignment) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(alignment));
}
void* operator new[](std::size_t size, std::align_val_t alignment) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(alignment));
}

void operator delete(void* ptr) noexcept { counted_free(ptr); }
void operator delete[](void* ptr) noexcept { counted_free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { counted_free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { counted_free(ptr); }
void operator delete(void* ptr, std::align_val_t) noexcept {
  counted_free(ptr);
}
void operator delete[](void* ptr, std::align_val_t) noexcept {
  counted_free(ptr);
}
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  counted_free(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  counted_free(ptr);
}
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  counted_free(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  counted_free(ptr);
}
