// Open-addressing flat hash map for the grammar hot paths.
//
// std::unordered_map pays a heap node per entry and chases a pointer per
// probe; on the digram index that cost lands on *every* Grammar::append().
// FlatMap keeps keys and values in two flat arrays with power-of-two
// capacity and linear probing, so a lookup is one mix, one mask, and a
// forward scan over contiguous memory. Deletion is tombstone-free: the
// backward-shift algorithm moves displaced entries into the hole, so probe
// sequences never grow stale and the table never needs a cleanup rehash.
//
// Constraints (deliberate, for speed):
//   - Key and Value must be trivially copyable (entries move via memcpy
//     during rehash and backward shift).
//   - No iterator stability; `for_each` visits entries in table order.
//   - Not thread-safe.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "support/hash.hpp"

namespace pythia::support {

/// Default hash: mix64 finalizer. Identity hashes (what libstdc++ uses for
/// integers) are not enough here — power-of-two masking would turn the
/// structured bit patterns of digram keys into long collision clusters.
struct Mix64Hash {
  std::uint64_t operator()(std::uint64_t key) const { return mix64(key); }
};

template <typename Key, typename Value, typename Hash = Mix64Hash>
class FlatMap {
  static_assert(std::is_trivially_copyable_v<Key>);
  static_assert(std::is_trivially_copyable_v<Value>);

 public:
  explicit FlatMap(std::size_t initial_capacity = 16) {
    std::size_t cap = 16;
    while (cap < initial_capacity) cap <<= 1;
    keys_.resize(cap);
    values_.resize(cap);
    used_.assign(cap, 0);
    mask_ = cap - 1;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return mask_ + 1; }

  void clear() {
    used_.assign(used_.size(), 0);
    size_ = 0;
  }

  /// Pointer to the value for `key`, or nullptr when absent.
  Value* find(const Key& key) {
    const std::size_t slot = find_slot(key);
    return slot != kNone ? &values_[slot] : nullptr;
  }
  const Value* find(const Key& key) const {
    const std::size_t slot = find_slot(key);
    return slot != kNone ? &values_[slot] : nullptr;
  }

  bool contains(const Key& key) const { return find_slot(key) != kNone; }

  /// Inserts or overwrites.
  void insert_or_assign(const Key& key, const Value& value) {
    if ((size_ + 1) * 4 > capacity() * 3) grow();
    std::size_t slot = Hash{}(key)&mask_;
    while (used_[slot]) {
      if (keys_[slot] == key) {
        values_[slot] = value;
        return;
      }
      slot = (slot + 1) & mask_;
    }
    used_[slot] = 1;
    keys_[slot] = key;
    values_[slot] = value;
    ++size_;
  }

  /// Removes `key`; returns whether it was present. Backward-shift: every
  /// entry in the probe cluster after the hole moves back iff its home
  /// slot is at or before the hole, so lookups never cross a gap.
  bool erase(const Key& key) {
    const std::size_t slot = find_slot(key);
    if (slot == kNone) return false;
    erase_slot(slot);
    return true;
  }

  /// Removes `key` only when its value satisfies `pred` (single probe for
  /// the common "erase if it still points at me" pattern).
  template <typename Pred>
  bool erase_if(const Key& key, Pred pred) {
    const std::size_t slot = find_slot(key);
    if (slot == kNone || !pred(values_[slot])) return false;
    erase_slot(slot);
    return true;
  }

  template <typename Fn>
  void for_each(Fn fn) const {
    for (std::size_t slot = 0; slot < used_.size(); ++slot) {
      if (used_[slot]) fn(keys_[slot], values_[slot]);
    }
  }

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  std::size_t find_slot(const Key& key) const {
    std::size_t slot = Hash{}(key)&mask_;
    while (used_[slot]) {
      if (keys_[slot] == key) return slot;
      slot = (slot + 1) & mask_;
    }
    return kNone;
  }

  void erase_slot(std::size_t hole) {
    std::size_t slot = hole;
    while (true) {
      slot = (slot + 1) & mask_;
      if (!used_[slot]) break;
      const std::size_t home = Hash{}(keys_[slot]) & mask_;
      // `slot` can fill the hole iff its home precedes the hole in probe
      // order, i.e. the hole lies within [home, slot).
      if (((slot - home) & mask_) >= ((slot - hole) & mask_)) {
        keys_[hole] = keys_[slot];
        values_[hole] = values_[slot];
        hole = slot;
      }
    }
    used_[hole] = 0;
    --size_;
  }

  void grow() {
    const std::size_t old_cap = capacity();
    std::vector<Key> old_keys = std::move(keys_);
    std::vector<Value> old_values = std::move(values_);
    std::vector<std::uint8_t> old_used = std::move(used_);

    const std::size_t cap = old_cap * 2;
    keys_.resize(cap);
    values_.resize(cap);
    used_.assign(cap, 0);
    mask_ = cap - 1;

    for (std::size_t i = 0; i < old_cap; ++i) {
      if (!old_used[i]) continue;
      std::size_t slot = Hash{}(old_keys[i]) & mask_;
      while (used_[slot]) slot = (slot + 1) & mask_;
      used_[slot] = 1;
      keys_[slot] = old_keys[i];
      values_[slot] = old_values[i];
    }
  }

  std::vector<Key> keys_;
  std::vector<Value> values_;
  std::vector<std::uint8_t> used_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace pythia::support
