// Lightweight always-on assertion macros.
//
// The grammar code maintains delicate invariants; we keep these checks in
// release builds because they are cheap relative to the work they guard and
// turn silent corruption into an immediate, located failure.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace pythia::support {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "pythia: assertion failed: %s\n  at %s:%d\n  %s\n",
               expr, file, line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace pythia::support

#define PYTHIA_ASSERT(expr)                                                 \
  do {                                                                      \
    if (!(expr))                                                            \
      ::pythia::support::assert_fail(#expr, __FILE__, __LINE__, nullptr);   \
  } while (false)

#define PYTHIA_ASSERT_MSG(expr, msg)                                        \
  do {                                                                      \
    if (!(expr))                                                            \
      ::pythia::support::assert_fail(#expr, __FILE__, __LINE__, (msg));     \
  } while (false)
