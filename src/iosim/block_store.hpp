// Simulated block storage with a small cache and asynchronous prefetch.
//
// Third runtime-system integration for the oracle (after MPI and
// OpenMP): the paper's fig. 9 discussion sizes prediction cost against
// "coarse-grain optimization such as prefetching data", and its related
// work (Omnisc'IO) applies grammar prediction to I/O. This substrate
// lets bench/ext_io_prefetch demonstrate that loop: an I/O-bound
// application announces reads as events; a prefetcher asks PYTHIA which
// blocks the application will touch next and issues asynchronous
// prefetches that overlap the device latency with computation.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "sim/clock.hpp"
#include "support/assert.hpp"

namespace pythia::iosim {

class BlockStore {
 public:
  struct Config {
    double hit_ns = 2'000.0;        ///< cache hit service time
    double miss_ns = 400'000.0;     ///< full device round trip
    double issue_ns = 1'500.0;      ///< CPU cost to launch a prefetch
    std::size_t cache_blocks = 64;  ///< LRU capacity
  };

  struct Stats {
    std::uint64_t reads = 0;
    std::uint64_t hits = 0;            ///< block resident and ready
    std::uint64_t late_prefetches = 0; ///< in flight: partial win
    std::uint64_t misses = 0;          ///< full device latency paid
    std::uint64_t prefetches = 0;
    std::uint64_t redundant_prefetches = 0;  ///< already resident/in-flight
  };

  explicit BlockStore(Config config) : config_(config) {
    PYTHIA_ASSERT(config.cache_blocks >= 1);
  }
  BlockStore() : BlockStore(Config{}) {}

  /// Synchronous read: advances `clock` by the service time — hit cost,
  /// remaining in-flight time, or a full miss.
  void read(sim::VirtualClock& clock, std::uint64_t block) {
    ++stats_.reads;
    auto it = cache_.find(block);
    if (it != cache_.end()) {
      touch(it);
      if (it->second.ready_ns <= clock.now_ns()) {
        ++stats_.hits;
        clock.advance(config_.hit_ns);
      } else {
        // Prefetch still in flight: wait out the remainder.
        ++stats_.late_prefetches;
        clock.merge(it->second.ready_ns);
        clock.advance(config_.hit_ns);
      }
      return;
    }
    ++stats_.misses;
    clock.advance(config_.miss_ns);
    insert(clock, block, clock.now_ns());
  }

  /// Asynchronous prefetch: cheap to issue; the block becomes ready one
  /// device round trip later. A prefetch of a resident block refreshes
  /// its LRU position (the prefetcher has declared the block will be
  /// needed — without the touch, tight caches evict upcoming blocks
  /// right after fetching them).
  void prefetch(sim::VirtualClock& clock, std::uint64_t block) {
    ++stats_.prefetches;
    auto it = cache_.find(block);
    if (it != cache_.end()) {
      ++stats_.redundant_prefetches;
      touch(it);
      return;
    }
    clock.advance(config_.issue_ns);
    insert(clock, block, clock.now_ns() +
                             static_cast<std::uint64_t>(config_.miss_ns));
  }

  bool resident(std::uint64_t block) const {
    return cache_.find(block) != cache_.end();
  }
  const Stats& stats() const { return stats_; }
  const Config& config() const { return config_; }

 private:
  struct Entry {
    std::uint64_t ready_ns;
    std::list<std::uint64_t>::iterator lru_position;
  };

  using CacheMap = std::unordered_map<std::uint64_t, Entry>;

  void touch(CacheMap::iterator it) {
    lru_.erase(it->second.lru_position);
    lru_.push_front(it->first);
    it->second.lru_position = lru_.begin();
  }

  void insert(sim::VirtualClock&, std::uint64_t block,
              std::uint64_t ready_ns) {
    if (cache_.size() >= config_.cache_blocks) {
      const std::uint64_t victim = lru_.back();
      lru_.pop_back();
      cache_.erase(victim);
    }
    lru_.push_front(block);
    cache_.emplace(block, Entry{ready_ns, lru_.begin()});
  }

  Config config_;
  CacheMap cache_;
  std::list<std::uint64_t> lru_;
  Stats stats_;
};

}  // namespace pythia::iosim
