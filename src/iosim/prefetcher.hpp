// PYTHIA-guided prefetcher over a BlockStore.
//
// The I/O runtime submits a `block_read(block)` event before every read.
// In predict mode, the prefetcher looks `lookahead` events into the
// future; every predicted read whose block is not yet resident is
// prefetched, so the device round trip overlaps the computation between
// reads.
#pragma once

#include <cstdint>

#include "core/event.hpp"
#include "core/oracle.hpp"
#include "core/shared_registry.hpp"
#include "iosim/block_store.hpp"

namespace pythia::iosim {

class PrefetchingReader {
 public:
  struct Config {
    /// How far ahead to ask the oracle. Needs to cover at least
    /// miss_ns / inter-read-gap events for full latency hiding.
    std::size_t lookahead = 4;
    /// Minimum probability before acting on a prediction.
    double confidence = 0.5;
  };

  PrefetchingReader(BlockStore& store, sim::VirtualClock& clock,
                    Oracle& oracle, SharedRegistry& registry, Config config)
      : store_(store),
        clock_(clock),
        oracle_(oracle),
        shared_(registry),
        interner_(registry),
        read_kind_(registry.kind("block_read")),
        config_(config) {}

  PrefetchingReader(BlockStore& store, sim::VirtualClock& clock,
                    Oracle& oracle, SharedRegistry& registry)
      : PrefetchingReader(store, clock, oracle, registry, Config{}) {}

  /// Announce + perform one block read; then use the oracle to prefetch
  /// the reads it foresees.
  void read(std::uint64_t block) {
    oracle_.event(interner_.event(read_kind_, static_cast<EventAux>(block)),
                  clock_.now_ns());
    store_.read(clock_, block);

    // Breaker open: no lookahead at all. Wrong prefetches are not free —
    // they evict resident blocks and occupy the device — so a degraded
    // oracle must behave like no oracle.
    if (!oracle_.serving() || oracle_.degraded()) return;
    for (std::size_t distance = 1; distance <= config_.lookahead;
         ++distance) {
      const auto prediction = oracle_.predict_event(distance);
      if (!prediction.has_value() ||
          prediction->probability < config_.confidence) {
        continue;
      }
      if (shared_.kind_of(prediction->event) != read_kind_) continue;
      const auto predicted_block =
          static_cast<std::uint64_t>(shared_.aux_of(prediction->event));
      // Resident blocks get their LRU position refreshed by the store;
      // absent ones start their device round trip now.
      store_.prefetch(clock_, predicted_block);
      ++prefetches_issued_;
    }
  }

  /// Application compute between reads (advances virtual time, giving
  /// in-flight prefetches room to land).
  void compute(double virtual_ns) { clock_.advance(virtual_ns); }

  std::uint64_t prefetches_issued() const { return prefetches_issued_; }

 private:
  BlockStore& store_;
  sim::VirtualClock& clock_;
  Oracle& oracle_;
  SharedRegistry& shared_;
  CachedInterner interner_;
  KindId read_kind_;
  Config config_;
  std::uint64_t prefetches_issued_ = 0;
};

}  // namespace pythia::iosim
