// Event-interposition layer over the simulated MPI runtime — the
// counterpart of the paper's LD_PRELOAD shim (§III-B, "MPI runtime
// system").
//
// Every MPI-like call submits one event to the per-rank Oracle: the
// function kind plus an auxiliary payload (peer rank for point-to-point,
// root for collectives, reduction op for reductions). Blocking calls
// (Wait/Waitall and collective entry) additionally notify an observer —
// this is where a real runtime would use the synchronization time to ask
// PYTHIA for predictions and perform an optimization.
#pragma once

#include <cstdint>
#include <span>

#include "core/event.hpp"
#include "core/oracle.hpp"
#include "core/shared_registry.hpp"
#include "mpisim/communicator.hpp"

namespace pythia::mpisim {

using pythia::SharedRegistry;

/// Interned kind ids for the intercepted MPI functions.
struct MpiEventKinds {
  KindId send, recv, isend, irecv, wait, waitall;
  KindId barrier, bcast, reduce, allreduce, gather, scatter, alltoall;

  static MpiEventKinds intern(SharedRegistry& registry) {
    MpiEventKinds kinds;
    kinds.send = registry.kind("MPI_Send");
    kinds.recv = registry.kind("MPI_Recv");
    kinds.isend = registry.kind("MPI_Isend");
    kinds.irecv = registry.kind("MPI_Irecv");
    kinds.wait = registry.kind("MPI_Wait");
    kinds.waitall = registry.kind("MPI_Waitall");
    kinds.barrier = registry.kind("MPI_Barrier");
    kinds.bcast = registry.kind("MPI_Bcast");
    kinds.reduce = registry.kind("MPI_Reduce");
    kinds.allreduce = registry.kind("MPI_Allreduce");
    kinds.gather = registry.kind("MPI_Gather");
    kinds.scatter = registry.kind("MPI_Scatter");
    kinds.alltoall = registry.kind("MPI_Alltoall");
    return kinds;
  }
};

/// Hooks for the experiment harness. on_event fires after each submitted
/// event; on_sync_point fires when entering a blocking call — the moment
/// the paper's runtime asks for predictions.
class CommObserver {
 public:
  virtual ~CommObserver() = default;
  virtual void on_event(TerminalId event, std::uint64_t now_ns) {
    (void)event;
    (void)now_ns;
  }
  virtual void on_sync_point(std::uint64_t now_ns) { (void)now_ns; }
};

/// How point-to-point peer ranks are encoded into event payloads.
///
/// kAbsolute is the paper's scheme: the event for MPI_Send(dst=3) carries
/// the literal rank 3. Traces are then tied to one process count — the
/// limitation the paper's conclusion calls out.
///
/// kRelative is this reproduction's extension of that future work: the
/// payload is the modular offset (peer − my_rank mod size). Ring and
/// butterfly patterns then produce identical event streams at any rank
/// count, so a trace recorded with P processes can guide a run with P'
/// (see bench/ext_config_transfer).
enum class PeerEncoding { kAbsolute, kRelative };

class InstrumentedComm {
 public:
  InstrumentedComm(Communicator& comm, Oracle& oracle,
                   SharedRegistry& registry, CommObserver* observer = nullptr,
                   PeerEncoding encoding = PeerEncoding::kAbsolute)
      : comm_(comm),
        oracle_(oracle),
        interner_(registry),
        kinds_(MpiEventKinds::intern(registry)),
        observer_(observer),
        encoding_(encoding) {}

  int rank() const { return comm_.rank(); }
  int size() const { return comm_.size(); }
  Communicator& raw() { return comm_; }
  Oracle& oracle() { return oracle_; }
  std::uint64_t now_ns() const { return comm_.now_ns(); }

  void compute(double virtual_ns) { comm_.compute(virtual_ns); }

  // --- instrumented MPI-like calls ---------------------------------------
  void send(int dst, int tag, std::span<const std::byte> bytes) {
    emit(kinds_.send, peer_aux(dst));
    comm_.send(dst, tag, bytes);
  }
  Payload recv(int src, int tag) {
    emit(kinds_.recv, peer_aux(src));
    return comm_.recv(src, tag);
  }
  Request isend(int dst, int tag, std::span<const std::byte> bytes) {
    emit(kinds_.isend, peer_aux(dst));
    return comm_.isend(dst, tag, bytes);
  }
  Request irecv(int src, int tag) {
    emit(kinds_.irecv, peer_aux(src));
    return comm_.irecv(src, tag);
  }
  void wait(Request& request) {
    emit(kinds_.wait);
    sync_point();
    comm_.wait(request);
  }
  void waitall(std::span<Request> requests) {
    emit(kinds_.waitall);
    sync_point();
    comm_.waitall(requests);
  }
  void barrier() {
    emit(kinds_.barrier);
    sync_point();
    comm_.barrier();
  }
  void bcast(Payload& data, int root) {
    emit(kinds_.bcast, root);
    sync_point();
    comm_.bcast(data, root);
  }
  double allreduce(double value, ReduceOp op) {
    emit(kinds_.allreduce, static_cast<EventAux>(op));
    sync_point();
    return comm_.allreduce(value, op);
  }
  std::vector<double> allreduce(std::span<const double> values, ReduceOp op) {
    emit(kinds_.allreduce, static_cast<EventAux>(op));
    sync_point();
    return comm_.allreduce(values, op);
  }
  double reduce(double value, ReduceOp op, int root) {
    emit(kinds_.reduce,
         static_cast<EventAux>(root * 8 + static_cast<int>(op)));
    sync_point();
    return comm_.reduce(value, op, root);
  }
  std::vector<Payload> gather(std::span<const std::byte> bytes, int root) {
    emit(kinds_.gather, root);
    sync_point();
    return comm_.gather(bytes, root);
  }
  Payload scatter(const std::vector<Payload>& chunks, int root) {
    emit(kinds_.scatter, root);
    sync_point();
    return comm_.scatter(chunks, root);
  }
  std::vector<Payload> alltoall(const std::vector<Payload>& send_chunks) {
    emit(kinds_.alltoall);
    sync_point();
    return comm_.alltoall(send_chunks);
  }

  // Typed conveniences mirroring Communicator's.
  void send_doubles(int dst, int tag, std::span<const double> values) {
    send(dst, tag, Communicator::as_bytes(values));
  }
  std::vector<double> recv_doubles(int src, int tag) {
    return Communicator::to_doubles(recv(src, tag));
  }
  Request isend_doubles(int dst, int tag, std::span<const double> values) {
    return isend(dst, tag, Communicator::as_bytes(values));
  }

  std::uint64_t events_submitted() const { return events_submitted_; }

  // --- aggregation-layer support (mpisim/aggregator.hpp) ------------------
  /// Terminal id of MPI_Isend towards `dst` under the current encoding;
  /// the aggregator compares it against the oracle's next-event
  /// prediction.
  TerminalId isend_terminal(int dst) {
    return interner_.event(kinds_.isend, peer_aux(dst));
  }
  /// Submits the MPI_Isend event without performing the send — the
  /// aggregating layer injects the data itself (possibly batched).
  void emit_isend_event(int dst) { emit(kinds_.isend, peer_aux(dst)); }

 private:
  void emit(KindId kind, EventAux aux = kNoAux) {
    const TerminalId id = interner_.event(kind, aux);
    oracle_.event(id, comm_.now_ns());
    ++events_submitted_;
    if (observer_ != nullptr) observer_->on_event(id, comm_.now_ns());
  }

  void sync_point() {
    if (observer_ != nullptr) observer_->on_sync_point(comm_.now_ns());
  }

  EventAux peer_aux(int peer) const {
    if (encoding_ == PeerEncoding::kAbsolute || peer < 0) return peer;
    // Signed shortest ring offset: the left neighbour is -1 at any rank
    // count (plain modular offset would encode it as size-1, which is
    // exactly the configuration dependence we are removing).
    const int size = comm_.size();
    int offset = (peer - comm_.rank()) % size;
    if (offset > size / 2) offset -= size;
    if (offset < -(size - 1) / 2) offset += size;
    return offset;
  }

  Communicator& comm_;
  Oracle& oracle_;
  CachedInterner interner_;
  MpiEventKinds kinds_;
  CommObserver* observer_;
  PeerEncoding encoding_;
  std::uint64_t events_submitted_ = 0;
};

}  // namespace pythia::mpisim
