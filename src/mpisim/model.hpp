// Network cost model for the simulated cluster.
//
// LogGP-flavoured: per-message send/receive overheads on the CPU, plus a
// latency + bandwidth term for the wire. Defaults approximate the paper's
// Paravance cluster (10 Gbps Ethernet, kernel TCP stack).
#pragma once

#include <cstddef>

namespace pythia::mpisim {

struct NetworkModel {
  double send_overhead_ns = 400.0;  ///< o_s: CPU cost to inject a message
  double recv_overhead_ns = 400.0;  ///< o_r: CPU cost to retire a message
  double latency_ns = 15'000.0;     ///< L: one-way wire+stack latency
  double bandwidth_gbps = 10.0;     ///< G: link bandwidth
  /// Persistent channels (MPI_Send_init/MPI_Start): one-time setup, then
  /// each MPI_Start skips argument validation and matching setup.
  double persistent_setup_ns = 3'000.0;
  double persistent_send_overhead_ns = 120.0;

  double transfer_ns(std::size_t bytes) const {
    const double byte_ns = 8.0 / bandwidth_gbps;  // ns per byte at G Gbps
    return latency_ns + static_cast<double>(bytes) * byte_ns;
  }

  /// A model with negligible costs (for logic-only tests).
  static NetworkModel zero() {
    return NetworkModel{.send_overhead_ns = 0.0,
                        .recv_overhead_ns = 0.0,
                        .latency_ns = 0.0,
                        .bandwidth_gbps = 1e9};
  }
};

}  // namespace pythia::mpisim
