// In-process message transport between simulated ranks.
//
// One mailbox per destination rank; messages carry the sender's virtual
// send-completion time so receivers can merge clocks deterministically.
// Matching follows MPI semantics: (source, tag) with wildcard support,
// FIFO per (source, tag) pair.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace pythia::mpisim {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

using Payload = std::vector<std::byte>;

struct Message {
  int source = 0;
  int tag = 0;
  Payload data;
  std::uint64_t sent_at_ns = 0;
  /// Continuation of an aggregated batch: rides the same wire transaction
  /// as its predecessor, paying bandwidth but not latency/overhead (see
  /// Communicator::send_batch and mpisim/aggregator.hpp).
  bool batch_continuation = false;
};

class Network {
 public:
  explicit Network(int ranks) : mailboxes_(static_cast<std::size_t>(ranks)) {}

  int size() const { return static_cast<int>(mailboxes_.size()); }

  void deliver(int destination, Message message) {
    Mailbox& box = mailboxes_[static_cast<std::size_t>(destination)];
    {
      std::lock_guard lock(box.mutex);
      box.queue.push_back(std::move(message));
    }
    box.ready.notify_all();
  }

  /// Blocks until a message matching (source, tag) is available and
  /// removes it. source/tag may be kAnySource/kAnyTag.
  Message receive(int destination, int source, int tag) {
    Mailbox& box = mailboxes_[static_cast<std::size_t>(destination)];
    std::unique_lock lock(box.mutex);
    for (;;) {
      for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
        if (matches(*it, source, tag)) {
          Message message = std::move(*it);
          box.queue.erase(it);
          return message;
        }
      }
      box.ready.wait(lock);
    }
  }

  /// Non-blocking probe (used by tests and by opportunistic polling).
  bool try_receive(int destination, int source, int tag, Message& out) {
    Mailbox& box = mailboxes_[static_cast<std::size_t>(destination)];
    std::lock_guard lock(box.mutex);
    for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
      if (matches(*it, source, tag)) {
        out = std::move(*it);
        box.queue.erase(it);
        return true;
      }
    }
    return false;
  }

  /// Count of undelivered messages (leak detection in tests).
  std::size_t pending() const {
    std::size_t total = 0;
    for (const Mailbox& box : mailboxes_) {
      std::lock_guard lock(box.mutex);
      total += box.queue.size();
    }
    return total;
  }

 private:
  static bool matches(const Message& message, int source, int tag) {
    return (source == kAnySource || message.source == source) &&
           (tag == kAnyTag || message.tag == tag);
  }

  struct Mailbox {
    mutable std::mutex mutex;
    std::condition_variable ready;
    std::deque<Message> queue;
  };

  std::vector<Mailbox> mailboxes_;
};

}  // namespace pythia::mpisim
