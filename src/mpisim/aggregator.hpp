// Prediction-guided send aggregation.
//
// The paper (§III-B) motivates exactly this optimization: "the
// optimization could consist in aggregating multiple successive MPI send
// messages [Aumage et al.]". The paper itself stops at recording and
// predicting; this layer closes the loop as an extension.
//
// On every isend, the layer submits the event and asks PYTHIA for the
// next event. If the oracle says another isend to the *same destination*
// comes next, the payload is buffered; when the prediction chain breaks
// (different event, different destination, or no prediction), the buffer
// is flushed as one wire transaction (Communicator::send_batch), paying
// the per-message latency and injection overhead once.
//
// Correctness does not depend on the oracle: a misprediction only means
// a buffer of size 1 is flushed immediately — the receiver always sees
// every message, in order, with matching tags.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "mpisim/instrumented_comm.hpp"

namespace pythia::mpisim {

class SendAggregator {
 public:
  struct Stats {
    std::uint64_t sends = 0;           ///< isends issued by the app
    std::uint64_t batched = 0;         ///< sends that rode a batch
    std::uint64_t batches = 0;         ///< wire transactions with >1 part
    std::uint64_t flushes = 0;         ///< total wire transactions
    std::uint64_t latency_saved = 0;   ///< messages that skipped latency
    std::uint64_t degraded_sends = 0;  ///< sent vanilla (breaker open)
  };

  explicit SendAggregator(InstrumentedComm& mpi) : mpi_(mpi) {}

  ~SendAggregator() { flush(); }

  /// Drop-in replacement for InstrumentedComm::isend.
  Request isend(int dst, int tag, std::span<const std::byte> bytes) {
    ++stats_.sends;
    mpi_.emit_isend_event(dst);

    if (!pending_.empty() && pending_dst_ != dst) flush();
    pending_dst_ = dst;
    pending_.emplace_back(tag, Payload(bytes.begin(), bytes.end()));

    // Keep buffering only if PYTHIA says another isend to the same
    // destination is coming. When the divergence breaker is open the
    // oracle is not consulted at all: the chain breaks and the message
    // flushes immediately — exactly vanilla eager-send behaviour.
    std::optional<Prediction> next;
    if (!mpi_.oracle().degraded()) {
      next = mpi_.oracle().predict_event(1);
    } else {
      ++stats_.degraded_sends;
    }
    const bool chain_continues =
        next.has_value() && next->event == mpi_.isend_terminal(dst) &&
        next->probability > 0.5;
    if (!chain_continues) flush();

    // Buffered sends complete immediately (eager semantics).
    return Request::completed_send(dst, tag);
  }

  /// Flushes any buffered payloads as one batch.
  void flush() {
    if (pending_.empty()) return;
    ++stats_.flushes;
    if (pending_.size() > 1) {
      ++stats_.batches;
      stats_.batched += pending_.size();
      stats_.latency_saved += pending_.size() - 1;
    }
    mpi_.raw().send_batch(pending_dst_, pending_);
    pending_.clear();
  }

  // Pass-throughs that flush first (ordering safety: nothing may overtake
  // buffered sends).
  Request irecv(int src, int tag) {
    return mpi_.irecv(src, tag);  // receives cannot overtake our sends
  }
  void wait(Request& request) {
    flush();
    mpi_.wait(request);
  }
  void waitall(std::span<Request> requests) {
    flush();
    mpi_.waitall(requests);
  }
  void barrier() {
    flush();
    mpi_.barrier();
  }
  double allreduce(double value, ReduceOp op) {
    flush();
    return mpi_.allreduce(value, op);
  }
  void compute(double virtual_ns) { mpi_.compute(virtual_ns); }

  InstrumentedComm& underlying() { return mpi_; }
  const Stats& stats() const { return stats_; }

 private:
  InstrumentedComm& mpi_;
  std::vector<std::pair<int, Payload>> pending_;
  int pending_dst_ = -1;
  Stats stats_;
};

}  // namespace pythia::mpisim
