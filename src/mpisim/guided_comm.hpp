// Prediction-consumer routing over InstrumentedComm.
//
// Apps talk to one MPI surface; which send-path optimization (if any)
// their isends take is a *runner* decision, not an app decision — that is
// what lets harness::run_app drive every prediction consumer over the
// unchanged app catalog, in predict mode and in online learn-while-running
// mode alike. GuidedComm mirrors InstrumentedComm's surface; isend routes
// through the enabled consumer:
//
//   (none)      — plain InstrumentedComm::isend (vanilla wire behaviour)
//   aggregation — SendAggregator: predicted same-destination chains batch
//                 into one wire transaction
//   persistent  — PersistentSendOptimizer: channels set up for sends the
//                 oracle says recur
//
// Ordering safety: every call a buffered send must not overtake (blocking
// point-to-point, waits, collectives) flushes the aggregator first, so a
// guided run delivers exactly the messages a vanilla run does, in order.
// Both consumers check the oracle's serving()/degraded() gates themselves,
// which is what keeps a withheld or tripped online ramp at vanilla cost.
#pragma once

#include <optional>

#include "mpisim/aggregator.hpp"
#include "mpisim/instrumented_comm.hpp"
#include "mpisim/persistent.hpp"

namespace pythia::mpisim {

class GuidedComm {
 public:
  GuidedComm(Communicator& comm, Oracle& oracle, SharedRegistry& registry,
             CommObserver* observer = nullptr,
             PeerEncoding encoding = PeerEncoding::kAbsolute)
      : mpi_(comm, oracle, registry, observer, encoding) {}

  /// Route isends through the send aggregator (exclusive with
  /// enable_persistent; the last call wins).
  void enable_aggregation() {
    persistent_.reset();
    aggregator_.emplace(mpi_);
  }
  /// Route isends through persistent-channel setup.
  void enable_persistent(PersistentSendOptimizer::Options options = {}) {
    aggregator_.reset();
    persistent_.emplace(mpi_, options);
  }

  const SendAggregator::Stats* aggregator_stats() const {
    return aggregator_ ? &aggregator_->stats() : nullptr;
  }
  const PersistentSendOptimizer::Stats* persistent_stats() const {
    return persistent_ ? &persistent_->stats() : nullptr;
  }

  int rank() const { return mpi_.rank(); }
  int size() const { return mpi_.size(); }
  Communicator& raw() { return mpi_.raw(); }
  Oracle& oracle() { return mpi_.oracle(); }
  InstrumentedComm& underlying() { return mpi_; }
  std::uint64_t now_ns() const { return mpi_.now_ns(); }

  void compute(double virtual_ns) { mpi_.compute(virtual_ns); }

  // --- MPI-like surface (mirrors InstrumentedComm) ------------------------
  void send(int dst, int tag, std::span<const std::byte> bytes) {
    sync();  // a blocking send must not overtake buffered isends
    mpi_.send(dst, tag, bytes);
  }
  Payload recv(int src, int tag) {
    sync();
    return mpi_.recv(src, tag);
  }
  Request isend(int dst, int tag, std::span<const std::byte> bytes) {
    if (aggregator_) return aggregator_->isend(dst, tag, bytes);
    if (persistent_) return persistent_->isend(dst, tag, bytes);
    return mpi_.isend(dst, tag, bytes);
  }
  Request irecv(int src, int tag) {
    return mpi_.irecv(src, tag);  // receives cannot overtake our sends
  }
  void wait(Request& request) {
    sync();
    mpi_.wait(request);
  }
  void waitall(std::span<Request> requests) {
    sync();
    mpi_.waitall(requests);
  }
  void barrier() {
    sync();
    mpi_.barrier();
  }
  void bcast(Payload& data, int root) {
    sync();
    mpi_.bcast(data, root);
  }
  double allreduce(double value, ReduceOp op) {
    sync();
    return mpi_.allreduce(value, op);
  }
  std::vector<double> allreduce(std::span<const double> values, ReduceOp op) {
    sync();
    return mpi_.allreduce(values, op);
  }
  double reduce(double value, ReduceOp op, int root) {
    sync();
    return mpi_.reduce(value, op, root);
  }
  std::vector<Payload> gather(std::span<const std::byte> bytes, int root) {
    sync();
    return mpi_.gather(bytes, root);
  }
  Payload scatter(const std::vector<Payload>& chunks, int root) {
    sync();
    return mpi_.scatter(chunks, root);
  }
  std::vector<Payload> alltoall(const std::vector<Payload>& send_chunks) {
    sync();
    return mpi_.alltoall(send_chunks);
  }

  void send_doubles(int dst, int tag, std::span<const double> values) {
    send(dst, tag, Communicator::as_bytes(values));
  }
  std::vector<double> recv_doubles(int src, int tag) {
    return Communicator::to_doubles(recv(src, tag));
  }
  Request isend_doubles(int dst, int tag, std::span<const double> values) {
    return isend(dst, tag, Communicator::as_bytes(values));
  }

  std::uint64_t events_submitted() const { return mpi_.events_submitted(); }
  TerminalId isend_terminal(int dst) { return mpi_.isend_terminal(dst); }
  void emit_isend_event(int dst) { mpi_.emit_isend_event(dst); }

  /// Flushes any consumer-buffered sends (aggregation only; persistent
  /// channels send eagerly). Runs implicitly before every call that
  /// buffered sends must not overtake, and should run once more at the
  /// end of a rank program.
  void sync() {
    if (aggregator_) aggregator_->flush();
  }

 private:
  InstrumentedComm mpi_;
  std::optional<SendAggregator> aggregator_;
  std::optional<PersistentSendOptimizer> persistent_;
};

}  // namespace pythia::mpisim
