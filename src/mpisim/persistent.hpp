// Prediction-guided persistent communication.
//
// The second optimization the paper's MPI integration motivates
// (§III-B): "setting up persistent communication if a communication
// pattern repeats". A persistent channel (MPI_Send_init + MPI_Start)
// costs a one-time setup but each subsequent send skips most of the
// injection overhead. Setting one up for a message that never repeats
// *loses* time — exactly the decision an oracle can settle: when the
// reference execution shows an isend recurring often, the channel pays
// for itself.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "mpisim/instrumented_comm.hpp"

namespace pythia::mpisim {

class PersistentSendOptimizer {
 public:
  struct Options {
    /// Minimum occurrences of the send in the reference execution before
    /// a channel is worth its setup cost.
    std::uint64_t min_occurrences = 8;
  };

  explicit PersistentSendOptimizer(InstrumentedComm& mpi)
      : PersistentSendOptimizer(mpi, Options{}) {}
  PersistentSendOptimizer(InstrumentedComm& mpi, Options options)
      : mpi_(mpi), options_(options) {}

  struct Stats {
    std::uint64_t sends = 0;
    std::uint64_t channels = 0;          ///< persistent setups performed
    std::uint64_t persistent_sends = 0;  ///< sends through a channel
  };

  /// Drop-in replacement for InstrumentedComm::isend.
  Request isend(int dst, int tag, std::span<const std::byte> bytes) {
    ++stats_.sends;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst))
         << 32u) |
        static_cast<std::uint32_t>(tag);
    auto it = channels_.find(key);
    if (it != channels_.end()) {
      mpi_.emit_isend_event(dst);
      mpi_.raw().send_persistent(dst, tag, bytes);
      ++stats_.persistent_sends;
      return Request::completed_send(dst, tag);
    }

    // Oracle decision: does this send repeat often enough in the
    // reference execution to amortize a channel? When the divergence
    // breaker is open the reference occurrence counts describe an
    // execution we are provably not in — pay no setup, send vanilla.
    if (mpi_.oracle().serving() && !mpi_.oracle().degraded()) {
      const TerminalId terminal = mpi_.isend_terminal(dst);
      if (mpi_.oracle().reference_occurrences(terminal) >=
          options_.min_occurrences) {
        mpi_.raw().setup_persistent();
        channels_.emplace(key, true);
        ++stats_.channels;
        mpi_.emit_isend_event(dst);
        mpi_.raw().send_persistent(dst, tag, bytes);
        ++stats_.persistent_sends;
        return Request::completed_send(dst, tag);
      }
    }
    return mpi_.isend(dst, tag, bytes);
  }

  const Stats& stats() const { return stats_; }
  InstrumentedComm& underlying() { return mpi_; }

 private:
  InstrumentedComm& mpi_;
  Options options_;
  std::unordered_map<std::uint64_t, bool> channels_;
  Stats stats_;
};

}  // namespace pythia::mpisim
