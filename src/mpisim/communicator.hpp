// MPI-like communicator for the simulated cluster.
//
// Implements the subset of MPI the 13 evaluated applications need:
// blocking/non-blocking point-to-point, requests with wait/waitall, and
// the collectives (barrier, bcast, reduce, allreduce, gather, alltoall,
// alltoallv). Collectives are built on point-to-point messages through
// rank 0, which propagates virtual time correctly (max over participants)
// without a separate synchronization structure.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <utility>
#include <vector>

#include "mpisim/model.hpp"
#include "mpisim/network.hpp"
#include "sim/clock.hpp"
#include "sim/spin.hpp"
#include "support/assert.hpp"

namespace pythia::mpisim {

enum class ReduceOp { kSum, kMin, kMax, kProd };

/// Non-blocking operation handle. Sends complete eagerly (buffered); a
/// receive is matched when wait()ed on, like a rendezvous at MPI_Wait.
class Request {
 public:
  Request() = default;
  bool active() const { return kind_ != Kind::kNone; }
  bool is_receive() const { return kind_ == Kind::kRecv; }

  /// Data of a completed receive (empty for sends).
  Payload& data() { return data_; }

  /// An already-completed send handle (eager semantics) — used by layers
  /// that inject data themselves, e.g. the send aggregator.
  static Request completed_send(int peer, int tag) {
    Request request;
    request.kind_ = Kind::kSend;
    request.peer_ = peer;
    request.tag_ = tag;
    request.done_ = true;
    return request;
  }

 private:
  friend class Communicator;
  enum class Kind { kNone, kSend, kRecv };
  Kind kind_ = Kind::kNone;
  int peer_ = kAnySource;
  int tag_ = kAnyTag;
  bool done_ = false;
  Payload data_;
};

class Communicator {
 public:
  Communicator(Network& network, int rank, NetworkModel model,
               double real_work_fraction)
      : network_(network),
        rank_(rank),
        model_(model),
        real_work_fraction_(real_work_fraction) {}

  int rank() const { return rank_; }
  int size() const { return network_.size(); }
  sim::VirtualClock& clock() { return clock_; }
  std::uint64_t now_ns() const { return clock_.now_ns(); }

  /// Application compute: advances virtual time and (optionally) burns a
  /// proportional amount of real CPU so recording overhead is measured
  /// against genuine work (Table I).
  void compute(double virtual_ns) {
    clock_.advance(virtual_ns);
    if (real_work_fraction_ > 0.0) {
      sim::Spinner::spin_ns(virtual_ns * real_work_fraction_);
    }
  }

  // --- point-to-point ----------------------------------------------------
  void send(int destination, int tag, std::span<const std::byte> bytes);
  Payload recv(int source, int tag);

  /// Sends several (tag, payload) parts to one destination as a single
  /// wire transaction: the first part pays the full send overhead and
  /// latency, continuations only bandwidth. Receivers match each part
  /// like an ordinary message. This models the aggregation optimization
  /// the paper's §III-B motivates.
  void send_batch(int destination,
                  std::span<const std::pair<int, Payload>> parts);

  /// Persistent-channel send (MPI_Send_init + MPI_Start): once a channel
  /// is set up (setup_persistent_ns), each send skips most of the
  /// injection overhead — the paper's second motivating optimization,
  /// "setting up persistent communication if a communication pattern
  /// repeats" (§III-B). Wire latency/bandwidth are unchanged.
  void setup_persistent() { clock_.advance(model_.persistent_setup_ns); }
  void send_persistent(int destination, int tag,
                       std::span<const std::byte> bytes);

  Request isend(int destination, int tag, std::span<const std::byte> bytes);
  Request irecv(int source, int tag);
  void wait(Request& request);
  void waitall(std::span<Request> requests);

  // Typed helpers.
  void send_doubles(int destination, int tag, std::span<const double> values) {
    send(destination, tag, as_bytes(values));
  }
  std::vector<double> recv_doubles(int source, int tag) {
    return to_doubles(recv(source, tag));
  }
  void send_empty(int destination, int tag) { send(destination, tag, {}); }

  // --- collectives ---------------------------------------------------------
  void barrier();
  void bcast(Payload& data, int root);
  std::vector<double> allreduce(std::span<const double> values, ReduceOp op);
  double allreduce(double value, ReduceOp op) {
    return allreduce(std::span<const double>(&value, 1), op)[0];
  }
  std::vector<double> reduce(std::span<const double> values, ReduceOp op,
                             int root);
  double reduce(double value, ReduceOp op, int root) {
    auto out = reduce(std::span<const double>(&value, 1), op, root);
    return out.empty() ? 0.0 : out[0];
  }
  /// Gathers each rank's payload at root (rank order). Non-roots get {}.
  std::vector<Payload> gather(std::span<const std::byte> bytes, int root);
  /// Root scatters per-rank payloads; everyone returns their chunk.
  Payload scatter(const std::vector<Payload>& chunks, int root);
  /// Personalized all-to-all exchange: element i goes to rank i.
  std::vector<Payload> alltoall(const std::vector<Payload>& send);

  static std::span<const std::byte> as_bytes(std::span<const double> values) {
    return {reinterpret_cast<const std::byte*>(values.data()),
            values.size() * sizeof(double)};
  }
  static std::vector<double> to_doubles(const Payload& payload) {
    std::vector<double> out(payload.size() / sizeof(double));
    std::memcpy(out.data(), payload.data(), out.size() * sizeof(double));
    return out;
  }

 private:
  Message receive_and_merge(int source, int tag);
  int next_collective_tag() {
    return kCollectiveTagBase + static_cast<int>(collective_seq_++ & 0xffff);
  }
  static void combine(std::vector<double>& acc, std::span<const double> in,
                      ReduceOp op);

  static constexpr int kCollectiveTagBase = 1 << 20;

  Network& network_;
  int rank_;
  NetworkModel model_;
  double real_work_fraction_;
  sim::VirtualClock clock_;
  std::uint64_t collective_seq_ = 0;
};

}  // namespace pythia::mpisim
