// Runs a simulated MPI job: one host thread per rank, a shared Network,
// and per-rank virtual clocks. The returned result carries each rank's
// final virtual time (the job's simulated makespan is their max) plus the
// real wall-clock of the whole run (used by the Table I overhead bench).
#pragma once

#include <chrono>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "mpisim/communicator.hpp"
#include "mpisim/network.hpp"
#include "support/assert.hpp"

namespace pythia::mpisim {

class Cluster {
 public:
  struct Options {
    NetworkModel model;
    /// Fraction of virtual compute burned as real CPU (Table I realism).
    double real_work_fraction = 0.0;
  };

  struct Result {
    std::vector<std::uint64_t> rank_virtual_ns;
    std::uint64_t makespan_virtual_ns = 0;
    double wall_seconds = 0.0;
  };

  Cluster(int ranks, Options options) : ranks_(ranks), options_(options) {
    PYTHIA_ASSERT(ranks >= 1);
  }
  explicit Cluster(int ranks) : Cluster(ranks, Options{}) {}

  int size() const { return ranks_; }

  /// Runs `rank_main` once per rank, each on its own thread. Exceptions
  /// thrown by rank bodies are re-thrown (first one wins) after join.
  Result run(const std::function<void(Communicator&)>& rank_main) {
    Network network(ranks_);
    Result result;
    result.rank_virtual_ns.assign(static_cast<std::size_t>(ranks_), 0);

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(ranks_));
    std::vector<std::exception_ptr> errors(static_cast<std::size_t>(ranks_));

    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < ranks_; ++r) {
      threads.emplace_back([&, r] {
        Communicator comm(network, r, options_.model,
                          options_.real_work_fraction);
        try {
          rank_main(comm);
        } catch (...) {
          errors[static_cast<std::size_t>(r)] = std::current_exception();
        }
        result.rank_virtual_ns[static_cast<std::size_t>(r)] = comm.now_ns();
      });
    }
    for (std::thread& thread : threads) thread.join();
    const auto stop = std::chrono::steady_clock::now();
    result.wall_seconds =
        std::chrono::duration<double>(stop - start).count();

    for (const std::exception_ptr& error : errors) {
      if (error) std::rethrow_exception(error);
    }
    for (std::uint64_t t : result.rank_virtual_ns) {
      result.makespan_virtual_ns = std::max(result.makespan_virtual_ns, t);
    }
    PYTHIA_ASSERT_MSG(network.pending() == 0,
                      "unconsumed messages at end of run");
    return result;
  }

 private:
  int ranks_;
  Options options_;
};

}  // namespace pythia::mpisim
