#include "mpisim/communicator.hpp"

#include <algorithm>

namespace pythia::mpisim {

// ---------------------------------------------------------------------------
// Point-to-point

void Communicator::send(int destination, int tag,
                        std::span<const std::byte> bytes) {
  PYTHIA_ASSERT(destination >= 0 && destination < size());
  clock_.advance(model_.send_overhead_ns);
  Message message;
  message.source = rank_;
  message.tag = tag;
  message.data.assign(bytes.begin(), bytes.end());
  message.sent_at_ns = clock_.now_ns();
  network_.deliver(destination, std::move(message));
}

Message Communicator::receive_and_merge(int source, int tag) {
  Message message = network_.receive(rank_, source, tag);
  const double wire_ns =
      message.batch_continuation
          ? model_.transfer_ns(message.data.size()) - model_.latency_ns
          : model_.transfer_ns(message.data.size());
  if (!message.batch_continuation) {
    clock_.advance(model_.recv_overhead_ns);
  }
  clock_.merge(message.sent_at_ns + static_cast<std::uint64_t>(wire_ns));
  return message;
}

void Communicator::send_persistent(int destination, int tag,
                                   std::span<const std::byte> bytes) {
  PYTHIA_ASSERT(destination >= 0 && destination < size());
  clock_.advance(model_.persistent_send_overhead_ns);
  Message message;
  message.source = rank_;
  message.tag = tag;
  message.data.assign(bytes.begin(), bytes.end());
  message.sent_at_ns = clock_.now_ns();
  network_.deliver(destination, std::move(message));
}

void Communicator::send_batch(
    int destination, std::span<const std::pair<int, Payload>> parts) {
  PYTHIA_ASSERT(destination >= 0 && destination < size());
  clock_.advance(model_.send_overhead_ns);  // one injection for the batch
  double accumulated_bytes = 0.0;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    Message message;
    message.source = rank_;
    message.tag = parts[i].first;
    message.data = parts[i].second;
    // Later parts arrive behind the earlier ones on the wire.
    message.sent_at_ns =
        clock_.now_ns() +
        static_cast<std::uint64_t>(accumulated_bytes * 8.0 /
                                   model_.bandwidth_gbps);
    message.batch_continuation = i > 0;
    accumulated_bytes += static_cast<double>(parts[i].second.size());
    network_.deliver(destination, std::move(message));
  }
}

Payload Communicator::recv(int source, int tag) {
  return receive_and_merge(source, tag).data;
}

Request Communicator::isend(int destination, int tag,
                            std::span<const std::byte> bytes) {
  // Eager/buffered: the message is injected immediately; MPI_Wait on a
  // send completes without blocking.
  send(destination, tag, bytes);
  Request request;
  request.kind_ = Request::Kind::kSend;
  request.peer_ = destination;
  request.tag_ = tag;
  request.done_ = true;
  return request;
}

Request Communicator::irecv(int source, int tag) {
  Request request;
  request.kind_ = Request::Kind::kRecv;
  request.peer_ = source;
  request.tag_ = tag;
  request.done_ = false;
  return request;
}

void Communicator::wait(Request& request) {
  PYTHIA_ASSERT_MSG(request.active(), "wait on inactive request");
  if (request.done_) return;
  request.data_ = recv(request.peer_, request.tag_);
  request.done_ = true;
}

void Communicator::waitall(std::span<Request> requests) {
  for (Request& request : requests) {
    if (request.active()) wait(request);
  }
}

// ---------------------------------------------------------------------------
// Collectives (flat trees through rank 0; virtual time propagates through
// the message timestamps, so every participant leaves at >= the max of the
// participants' arrival times plus the transfer costs).

void Communicator::barrier() {
  const int tag = next_collective_tag();
  if (rank_ == 0) {
    // Receive in rank order, not arrival order: the clock advance/merge
    // interleaving differs per order, so an any-source loop would make
    // rank 0's virtual time depend on real thread scheduling. Rank order
    // is an equally valid barrier realization and keeps recorded
    // timestamps reproducible run to run.
    for (int r = 1; r < size(); ++r) {
      receive_and_merge(r, tag);
    }
    for (int r = 1; r < size(); ++r) {
      send(r, tag, {});
    }
  } else {
    send(0, tag, {});
    receive_and_merge(0, tag);
  }
}

void Communicator::bcast(Payload& data, int root) {
  const int tag = next_collective_tag();
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      if (r != root) send(r, tag, data);
    }
  } else {
    data = receive_and_merge(root, tag).data;
  }
}

void Communicator::combine(std::vector<double>& acc,
                           std::span<const double> in, ReduceOp op) {
  PYTHIA_ASSERT(acc.size() == in.size());
  for (std::size_t i = 0; i < acc.size(); ++i) {
    switch (op) {
      case ReduceOp::kSum:
        acc[i] += in[i];
        break;
      case ReduceOp::kMin:
        acc[i] = std::min(acc[i], in[i]);
        break;
      case ReduceOp::kMax:
        acc[i] = std::max(acc[i], in[i]);
        break;
      case ReduceOp::kProd:
        acc[i] *= in[i];
        break;
    }
  }
}

std::vector<double> Communicator::reduce(std::span<const double> values,
                                         ReduceOp op, int root) {
  const int tag = next_collective_tag();
  if (rank_ == root) {
    std::vector<double> acc(values.begin(), values.end());
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      const std::vector<double> contribution =
          to_doubles(receive_and_merge(r, tag).data);
      combine(acc, contribution, op);
    }
    return acc;
  }
  send(root, tag, as_bytes(values));
  return {};
}

std::vector<double> Communicator::allreduce(std::span<const double> values,
                                            ReduceOp op) {
  std::vector<double> result = reduce(values, op, 0);
  Payload bytes;
  if (rank_ == 0) {
    bytes.resize(result.size() * sizeof(double));
    std::memcpy(bytes.data(), result.data(), bytes.size());
  }
  bcast(bytes, 0);
  if (rank_ != 0) result = to_doubles(bytes);
  return result;
}

std::vector<Payload> Communicator::gather(std::span<const std::byte> bytes,
                                          int root) {
  const int tag = next_collective_tag();
  if (rank_ == root) {
    std::vector<Payload> out(static_cast<std::size_t>(size()));
    out[static_cast<std::size_t>(rank_)].assign(bytes.begin(), bytes.end());
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      out[static_cast<std::size_t>(r)] = receive_and_merge(r, tag).data;
    }
    return out;
  }
  send(root, tag, bytes);
  return {};
}

Payload Communicator::scatter(const std::vector<Payload>& chunks, int root) {
  const int tag = next_collective_tag();
  if (rank_ == root) {
    PYTHIA_ASSERT(static_cast<int>(chunks.size()) == size());
    for (int r = 0; r < size(); ++r) {
      if (r != root) send(r, tag, chunks[static_cast<std::size_t>(r)]);
    }
    return chunks[static_cast<std::size_t>(root)];
  }
  return receive_and_merge(root, tag).data;
}

std::vector<Payload> Communicator::alltoall(const std::vector<Payload>& send_chunks) {
  PYTHIA_ASSERT(static_cast<int>(send_chunks.size()) == size());
  const int tag = next_collective_tag();
  std::vector<Payload> out(static_cast<std::size_t>(size()));
  // Inject everything first (eager sends), then collect in rank order —
  // deterministic and deadlock-free.
  for (int r = 0; r < size(); ++r) {
    if (r == rank_) {
      out[static_cast<std::size_t>(r)] = send_chunks[static_cast<std::size_t>(r)];
    } else {
      send(r, tag, send_chunks[static_cast<std::size_t>(r)]);
    }
  }
  for (int r = 0; r < size(); ++r) {
    if (r == rank_) continue;
    out[static_cast<std::size_t>(r)] = receive_and_merge(r, tag).data;
  }
  return out;
}

}  // namespace pythia::mpisim
